//! `FaultNet` — the network seam for the replication plane, mirroring the
//! persistence layer's `FaultFs` (DESIGN.md §9.4): every byte a peer
//! session sends or receives goes through the [`Transport`] / [`Wire`]
//! traits, so the same supervised state machine runs over real TCP in
//! production ([`RealNet`]) and over an in-memory fault-injecting network
//! ([`SimNet`]) in the chaos tests.
//!
//! `SimNet` executes *scripted* faults the way `FaultScript` does: each
//! link (ordered endpoint pair) carries an op-counted script, and the k-th
//! operation on the link — connects and sends both count — can be made to
//! drop, delay, duplicate, reorder, or sever.  Partitions are modeled
//! separately as a symmetric relation toggled by the test ([`SimNet::partition`]
//! / [`SimNet::heal`]) because a partition is a *state*, not an event: it
//! fails every connect, send, and receive on the pair until healed.
//!
//! The wire protocol carried over this seam is line-oriented (one JSON
//! object per line, exactly the daemon's NDJSON plane), so `Wire` speaks
//! lines, not bytes: `send` ships one line, `recv` blocks for one line up
//! to the wire's timeout.  Fault injection at line granularity is what the
//! replication protocol has to survive anyway — TCP never tears a line in
//! half without also erroring the connection, and `SimNet`'s per-line
//! drop/reorder faults model the reorderings a session sees across
//! reconnects.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A connection factory: the only way a peer session reaches the network.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Opens a line-oriented connection to `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Wire>>;
}

/// One open line-oriented connection.
pub trait Wire: Send {
    /// Ships one line (newline appended by the wire).
    fn send(&mut self, line: &str) -> io::Result<()>;
    /// Blocks for the next line, up to the wire's timeout.
    fn recv(&mut self) -> io::Result<String>;
}

// ---------------------------------------------------------------------------
// RealNet: TCP with timeouts
// ---------------------------------------------------------------------------

/// The production transport: TCP with connect/read/write timeouts, so a
/// hung peer stalls one session thread for a bounded time, never forever.
#[derive(Debug, Clone)]
pub struct RealNet {
    /// Ceiling on connection establishment.
    pub connect_timeout: Duration,
    /// Ceiling on any single read or write.
    pub io_timeout: Duration,
}

impl Default for RealNet {
    fn default() -> RealNet {
        RealNet {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
        }
    }
}

impl Transport for RealNet {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Wire>> {
        let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved");
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    stream.set_nodelay(true).ok();
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Box::new(TcpWire { stream, reader }));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

struct TcpWire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire for TcpWire {
    fn send(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

// ---------------------------------------------------------------------------
// SimNet: in-memory network with scripted faults
// ---------------------------------------------------------------------------

/// One scripted network fault, executed at a specific operation index on a
/// link (mirror of `persist::Fault`, but for the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The line vanishes; the sender sees success.
    Drop,
    /// The line is delivered after a pause of this many milliseconds.
    DelayMs(u64),
    /// The line is delivered twice.
    Duplicate,
    /// The line is held back and delivered *after* the next line on the
    /// link (lost instead if the link closes first).
    Reorder,
    /// The connection is severed; the sender sees `ConnectionReset` and the
    /// other side sees end-of-stream.
    Sever,
}

/// An op-counted fault schedule for one directed link.  Connects and sends
/// on the link each consume one op; the k-th op (0-based) executes the
/// fault scripted at k, if any.
#[derive(Debug, Clone, Default)]
pub struct NetScript {
    at_op: BTreeMap<u64, NetFault>,
}

impl NetScript {
    /// An empty (fault-free) script.
    pub fn new() -> NetScript {
        NetScript::default()
    }

    /// Schedules `fault` at operation index `op` (builder style).
    pub fn fault_at(mut self, op: u64, fault: NetFault) -> NetScript {
        self.at_op.insert(op, fault);
        self
    }
}

/// An undirected endpoint pair, normalized so `(a, b)` and `(b, a)` collide.
fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[derive(Default)]
struct SimState {
    /// Listening endpoints: name → acceptor channel.
    listeners: HashMap<String, Sender<SimConn>>,
    /// Symmetric partition relation (normalized pairs).
    partitions: HashSet<(String, String)>,
    /// Per-directed-link fault schedules and op counters.
    links: HashMap<(String, String), LinkState>,
}

#[derive(Default)]
struct LinkState {
    script: NetScript,
    ops: u64,
}

impl SimState {
    fn partitioned(&self, a: &str, b: &str) -> bool {
        self.partitions.contains(&pair(a, b))
    }

    /// Consumes one op on the directed link `src → dst` and returns the
    /// fault scripted there, if any.
    fn charge(&mut self, src: &str, dst: &str) -> Option<NetFault> {
        let link = self
            .links
            .entry((src.to_string(), dst.to_string()))
            .or_default();
        let op = link.ops;
        link.ops += 1;
        link.script.at_op.get(&op).copied()
    }
}

/// The in-memory fault-injecting network: endpoints by name, scripted
/// faults per directed link, and test-controlled partitions.
#[derive(Clone, Default)]
pub struct SimNet {
    state: Arc<Mutex<SimState>>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet").finish()
    }
}

/// One inbound connection handed to a listener's accept loop.
pub struct SimConn {
    /// The connecting endpoint's name.
    pub peer: String,
    /// The server side of the wire.
    pub wire: Box<dyn Wire>,
}

impl SimNet {
    /// A fresh, fully connected, fault-free network.
    pub fn new() -> SimNet {
        SimNet::default()
    }

    /// A connector bound to `name` (implements [`Transport`]; its connects
    /// originate from `name` for partition and script purposes).
    pub fn endpoint(&self, name: &str) -> SimEndpoint {
        SimEndpoint {
            name: name.to_string(),
            state: Arc::clone(&self.state),
        }
    }

    /// Registers `name` as a listener and returns its accept channel.
    /// Dropping the receiver un-registers it (connects start failing), which
    /// is how chaos tests model a killed node.
    pub fn listen(&self, name: &str) -> Receiver<SimConn> {
        let (tx, rx) = mpsc::channel();
        self.state
            .lock()
            .expect("simnet poisoned")
            .listeners
            .insert(name.to_string(), tx);
        rx
    }

    /// Removes `name`'s listener without touching established wires —
    /// models a node that stops accepting but hasn't died.
    pub fn unlisten(&self, name: &str) {
        self.state
            .lock()
            .expect("simnet poisoned")
            .listeners
            .remove(name);
    }

    /// Installs the fault schedule for the directed link `src → dst`
    /// (replacing any previous schedule; the op counter keeps running).
    pub fn script(&self, src: &str, dst: &str, script: NetScript) {
        self.state
            .lock()
            .expect("simnet poisoned")
            .links
            .entry((src.to_string(), dst.to_string()))
            .or_default()
            .script = script;
    }

    /// Partitions `a` from `b` (symmetric): connects refuse, and both ends
    /// of every established wire between them error until [`SimNet::heal`].
    pub fn partition(&self, a: &str, b: &str) {
        self.state
            .lock()
            .expect("simnet poisoned")
            .partitions
            .insert(pair(a, b));
    }

    /// Heals the partition between `a` and `b`.
    pub fn heal(&self, a: &str, b: &str) {
        self.state
            .lock()
            .expect("simnet poisoned")
            .partitions
            .remove(&pair(a, b));
    }
}

/// A named connector over a [`SimNet`].
#[derive(Clone)]
pub struct SimEndpoint {
    name: String,
    state: Arc<Mutex<SimState>>,
}

impl fmt::Debug for SimEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimEndpoint")
            .field("name", &self.name)
            .finish()
    }
}

impl Transport for SimEndpoint {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Wire>> {
        let fault = {
            let mut state = self.state.lock().expect("simnet poisoned");
            if state.partitioned(&self.name, addr) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("simnet: {} ⇹ {} partitioned", self.name, addr),
                ));
            }
            state.charge(&self.name, addr)
        };
        match fault {
            Some(NetFault::Drop) | Some(NetFault::Sever) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "simnet: scripted connect failure",
                ));
            }
            Some(NetFault::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(NetFault::Duplicate) | Some(NetFault::Reorder) | None => {}
        }
        let (client_tx, server_rx) = mpsc::channel();
        let (server_tx, client_rx) = mpsc::channel();
        let client = SimWire {
            state: Arc::clone(&self.state),
            local: self.name.clone(),
            remote: addr.to_string(),
            tx: client_tx,
            rx: client_rx,
            held: None,
            severed: false,
            recv_timeout: SIM_RECV_TIMEOUT,
        };
        let server = SimWire {
            state: Arc::clone(&self.state),
            local: addr.to_string(),
            remote: self.name.clone(),
            tx: server_tx,
            rx: server_rx,
            held: None,
            severed: false,
            recv_timeout: SIM_RECV_TIMEOUT,
        };
        let listener = self
            .state
            .lock()
            .expect("simnet poisoned")
            .listeners
            .get(addr)
            .cloned();
        let Some(listener) = listener else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("simnet: no listener at {addr}"),
            ));
        };
        listener
            .send(SimConn {
                peer: self.name.clone(),
                wire: Box::new(server),
            })
            .map_err(|_| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("simnet: listener at {addr} is gone"),
                )
            })?;
        Ok(Box::new(client))
    }
}

/// How long a simulated `recv` blocks before reporting `TimedOut`.  Short,
/// because chaos tests lean on it: a dropped line surfaces as a timed-out
/// response, which the session layer treats as a dead connection.
const SIM_RECV_TIMEOUT: Duration = Duration::from_millis(500);

struct SimWire {
    state: Arc<Mutex<SimState>>,
    local: String,
    remote: String,
    tx: Sender<String>,
    rx: Receiver<String>,
    /// A line held back by a `Reorder` fault, delivered after the next send.
    held: Option<String>,
    severed: bool,
    recv_timeout: Duration,
}

impl SimWire {
    fn deliver(&self, line: &str) -> io::Result<()> {
        self.tx
            .send(line.to_string())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "simnet: peer wire dropped"))
    }
}

impl Wire for SimWire {
    fn send(&mut self, line: &str) -> io::Result<()> {
        if self.severed {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        let fault = {
            let mut state = self.state.lock().expect("simnet poisoned");
            if state.partitioned(&self.local, &self.remote) {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("simnet: {} ⇹ {} partitioned", self.local, self.remote),
                ));
            }
            state.charge(&self.local, &self.remote)
        };
        match fault {
            Some(NetFault::Drop) => Ok(()),
            Some(NetFault::DelayMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.deliver(line)
            }
            Some(NetFault::Duplicate) => {
                self.deliver(line)?;
                self.deliver(line)
            }
            Some(NetFault::Reorder) => {
                self.held = Some(line.to_string());
                Ok(())
            }
            Some(NetFault::Sever) => {
                self.severed = true;
                Err(io::ErrorKind::ConnectionReset.into())
            }
            None => {
                self.deliver(line)?;
                if let Some(held) = self.held.take() {
                    self.deliver(&held)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> io::Result<String> {
        if self.severed {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        if self
            .state
            .lock()
            .expect("simnet poisoned")
            .partitioned(&self.local, &self.remote)
        {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!("simnet: {} ⇹ {} partitioned", self.local, self.remote),
            ));
        }
        match self.rx.recv_timeout(self.recv_timeout) {
            Ok(line) => Ok(line),
            Err(RecvTimeoutError::Timeout) => Err(io::ErrorKind::TimedOut.into()),
            Err(RecvTimeoutError::Disconnected) => Err(io::ErrorKind::UnexpectedEof.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_pair(net: &SimNet) -> (Box<dyn Wire>, Box<dyn Wire>) {
        let accept = net.listen("b");
        let client = net.endpoint("a").connect("b").expect("connect");
        let conn = accept.recv().expect("accepted");
        assert_eq!(conn.peer, "a");
        (client, conn.wire)
    }

    #[test]
    fn lines_flow_both_ways() {
        let net = SimNet::new();
        let (mut a, mut b) = wire_pair(&net);
        a.send("ping").unwrap();
        assert_eq!(b.recv().unwrap(), "ping");
        b.send("pong").unwrap();
        assert_eq!(a.recv().unwrap(), "pong");
    }

    #[test]
    fn connect_refused_without_listener() {
        let net = SimNet::new();
        let err = net.endpoint("a").connect("nowhere").err().expect("refused");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn dropped_listener_refuses_connects() {
        let net = SimNet::new();
        let accept = net.listen("b");
        drop(accept);
        let err = net.endpoint("a").connect("b").err().expect("refused");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn scripted_drop_loses_exactly_one_line() {
        let net = SimNet::new();
        // Op 0 is the connect; op 1 the first send.
        net.script("a", "b", NetScript::new().fault_at(1, NetFault::Drop));
        let (mut a, mut b) = wire_pair(&net);
        a.send("lost").unwrap();
        a.send("kept").unwrap();
        assert_eq!(b.recv().unwrap(), "kept");
    }

    #[test]
    fn scripted_duplicate_delivers_twice() {
        let net = SimNet::new();
        net.script("a", "b", NetScript::new().fault_at(1, NetFault::Duplicate));
        let (mut a, mut b) = wire_pair(&net);
        a.send("twice").unwrap();
        assert_eq!(b.recv().unwrap(), "twice");
        assert_eq!(b.recv().unwrap(), "twice");
    }

    #[test]
    fn scripted_reorder_swaps_adjacent_lines() {
        let net = SimNet::new();
        net.script("a", "b", NetScript::new().fault_at(1, NetFault::Reorder));
        let (mut a, mut b) = wire_pair(&net);
        a.send("first").unwrap();
        a.send("second").unwrap();
        assert_eq!(b.recv().unwrap(), "second");
        assert_eq!(b.recv().unwrap(), "first");
    }

    #[test]
    fn scripted_sever_errors_the_sender() {
        let net = SimNet::new();
        net.script("a", "b", NetScript::new().fault_at(1, NetFault::Sever));
        let (mut a, _b) = wire_pair(&net);
        assert_eq!(
            a.send("boom").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            a.send("after").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn partition_fails_connect_send_and_recv_until_healed() {
        let net = SimNet::new();
        let (mut a, mut b) = wire_pair(&net);
        net.partition("a", "b");
        assert!(net.endpoint("a").connect("b").is_err());
        assert!(a.send("x").is_err());
        assert!(b.recv().is_err());
        net.heal("a", "b");
        a.send("back").unwrap();
        assert_eq!(b.recv().unwrap(), "back");
    }

    #[test]
    fn recv_times_out_on_silence() {
        let net = SimNet::new();
        let (_a, mut b) = wire_pair(&net);
        assert_eq!(b.recv().unwrap_err().kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn peer_drop_surfaces_as_eof() {
        let net = SimNet::new();
        let (a, mut b) = wire_pair(&net);
        drop(a);
        assert_eq!(b.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }
}
