//! The daemon front end: a newline-delimited JSON request/response protocol.
//!
//! One request per line on the reader, one response per line on the writer —
//! the shape external load harnesses want for sustained traffic.  Requests:
//!
//! ```text
//! {"check": "<source>"}            check a program, report per-def verdicts
//! {"check": "<source>", "id": X}   same, echoing X back in the response
//! {"batch": ["<src>", ...]}        check several programs on the worker pool
//! {"stats": true}                  report service/cache counters
//! {"cache": "stats"}               full cache counters (validity + programs
//!                                  + persistence loads/saves)
//! {"cache": "flush"}               snapshot the warm state to the cache file
//! {"cache": "clear"}               drop all memoized state
//! {"metrics": "dump"}              versioned metrics snapshot: solver
//!                                  counters, request latency histograms,
//!                                  cache gauges (DESIGN.md §8.2 schema)
//! {"health": true}                 ready/degraded probe (same payload the
//!                                  HTTP plane serves on GET /healthz)
//! {"replica": ...}                 the daemon-to-daemon replication plane:
//!                                  hello/frame/snapshot/status (§11)
//! ```
//!
//! Every response carries `"cache"` counters so a harness can watch hit rates
//! climb as traffic warms the validity cache.  Malformed lines produce an
//! `{"error": ...}` response instead of killing the session: a serving
//! process must survive bad input.
//!
//! Two robustness knobs (PR 7):
//!
//! * [`ServeOptions::request_timeout`] puts a wall-clock budget on each
//!   request.  A request that blows the budget gets a structured
//!   `{"error": "deadline"}` response immediately; its worker keeps running
//!   and is *drained* (joined) before the loop returns, so cache stores it
//!   makes still land and still persist at the final flush.
//! * [`serve_tcp`] listens on a socket with OS-level read/write timeouts
//!   ([`ServeOptions::io_timeout`]) so one stalled client can neither wedge
//!   the daemon nor hold a connection forever.  `{"shutdown": true}` stops
//!   the listener cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use birelcost::{DefReport, ProgramReport};

use crate::json::{self, Value};
use crate::service::Service;

/// Counters for one `serve` session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed.
    pub requests: usize,
    /// Requests answered with an `error` field.
    pub errors: usize,
    /// Requests that blew the per-request deadline (also counted in
    /// `errors`; the worker finished in the background).
    pub deadlines: usize,
    /// Whether the session ended on `{"shutdown": true}` rather than EOF.
    pub shutdown: bool,
}

/// Knobs for [`serve_with`] / [`serve_tcp`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Wall-clock budget per request; `None` = unbounded (the default, and
    /// the behavior of plain [`serve`]).
    pub request_timeout: Option<Duration>,
    /// OS-level socket read/write timeout for [`serve_tcp`] connections: a
    /// client that stays silent (or stops reading) this long is
    /// disconnected.  Ignored by the stdio loop.
    pub io_timeout: Option<Duration>,
}

/// Runs the request/response loop until the reader is exhausted.
pub fn serve<R: BufRead, W: Write>(
    service: &Service,
    reader: R,
    writer: W,
) -> std::io::Result<ServeSummary> {
    serve_with(service, reader, writer, ServeOptions::default())
}

/// [`serve`] with explicit [`ServeOptions`].
pub fn serve_with<R: BufRead, W: Write>(
    service: &Service,
    reader: R,
    mut writer: W,
    options: ServeOptions,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut inflight: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        if is_shutdown(&line) {
            summary.shutdown = true;
            let response = Value::obj([("bye", Value::Bool(true))]);
            writeln!(writer, "{response}")?;
            writer.flush()?;
            break;
        }
        let response = answer(service, &line, options, &mut inflight, &mut summary);
        if response.get("error").is_some() {
            summary.errors += 1;
        }
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
    // Graceful drain: timed-out workers may still be storing verdicts;
    // finish them now so the caller's final flush persists their work.
    // Their responses are discarded — the client already got the deadline
    // error, and interleaving a late line would corrupt the 1:1 protocol.
    for handle in inflight {
        let _ = handle.join();
    }
    Ok(summary)
}

/// Computes one response, enforcing the per-request deadline when one is
/// configured.  A timed-out worker is handed to `inflight` for the
/// end-of-session drain.
fn answer(
    service: &Service,
    line: &str,
    options: ServeOptions,
    inflight: &mut Vec<std::thread::JoinHandle<()>>,
    summary: &mut ServeSummary,
) -> Value {
    let Some(timeout) = options.request_timeout else {
        return respond(service, line);
    };
    let (tx, rx) = mpsc::channel();
    let worker_service = service.clone();
    let worker_line = line.to_string();
    let handle = std::thread::spawn(move || {
        // The receiver may be gone (deadline already reported): the send
        // fails, the work — cache stores, WAL appends — is already done.
        let _ = tx.send(respond(&worker_service, &worker_line));
    });
    match rx.recv_timeout(timeout) {
        Ok(response) => {
            let _ = handle.join();
            response
        }
        Err(_) => {
            summary.deadlines += 1;
            service.metrics().counter("serve.deadlines").incr();
            inflight.push(handle);
            let mut fields = vec![
                ("error".to_string(), Value::Str("deadline".to_string())),
                (
                    "timeout_ms".to_string(),
                    Value::Int(timeout.as_millis() as i64),
                ),
            ];
            if let Some(id) = json::parse(line).ok().and_then(|v| v.get("id").cloned()) {
                fields.insert(0, ("id".to_string(), id));
            }
            Value::Obj(fields)
        }
    }
}

/// Whether a request line is `{"shutdown": true}` (cheap substring gate
/// before the real parse, since almost no line is).
fn is_shutdown(line: &str) -> bool {
    line.contains("\"shutdown\"")
        && json::parse(line)
            .ok()
            .is_some_and(|v| matches!(v.get("shutdown"), Some(Value::Bool(true))))
}

/// Serves connections from a TCP listener, sequentially, until a client
/// sends `{"shutdown": true}`.  Each connection runs the same NDJSON loop
/// as stdio under [`ServeOptions::io_timeout`]-bounded socket reads/writes;
/// a connection that times out or errors is dropped (and counted) without
/// taking the daemon down.
pub fn serve_tcp(
    service: &Service,
    listener: &TcpListener,
    options: ServeOptions,
) -> std::io::Result<ServeSummary> {
    let mut total = ServeSummary::default();
    for stream in listener.incoming() {
        let stream = stream?;
        stream.set_read_timeout(options.io_timeout)?;
        stream.set_write_timeout(options.io_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        match serve_with(service, reader, &stream, options) {
            Ok(summary) => {
                total.requests += summary.requests;
                total.errors += summary.errors;
                total.deadlines += summary.deadlines;
                if summary.shutdown {
                    total.shutdown = true;
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                rel_obs::counter!("serve.idle_disconnects").incr();
            }
            Err(_) => {
                rel_obs::counter!("serve.conn_errors").incr();
            }
        }
    }
    Ok(total)
}

/// Computes the response for one request line, recording the request's
/// latency on the service's private metrics registry (and a span on the
/// process recorder, when armed).
pub fn respond(service: &Service, line: &str) -> Value {
    let _span = rel_obs::span("serve.request");
    let _timer = service
        .metrics()
        .histogram("serve.request_ns")
        .start_timer();
    service.metrics().counter("serve.requests").incr();
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            service.metrics().counter("serve.errors").incr();
            return Value::obj([("error", Value::Str(format!("malformed request: {e}")))]);
        }
    };
    respond_parsed(service, &request)
}

/// [`respond`] for an already-parsed request: dispatch plus the `id` echo,
/// without the request counter or the latency observation — the reactor
/// plane counts requests at decode and measures latency at completion (so
/// queueing time is included), while the blocking loop above does both
/// around the parse.
pub fn respond_parsed(service: &Service, request: &Value) -> Value {
    let id = request.get("id").cloned();
    let mut response = match dispatch(service, request) {
        Ok(fields) => fields,
        Err(message) => {
            service.metrics().counter("serve.errors").incr();
            Value::obj([("error", Value::Str(message))])
        }
    };
    if let (Some(id), Value::Obj(fields)) = (id, &mut response) {
        fields.insert(0, ("id".to_string(), id));
    }
    response
}

fn dispatch(service: &Service, request: &Value) -> Result<Value, String> {
    if let Some(source) = request.get("check") {
        let source = source
            .as_str()
            .ok_or_else(|| "the `check` field must be a string of source code".to_string())?;
        return Ok(check_response(service, source));
    }
    if let Some(batch) = request.get("batch") {
        let Value::Arr(items) = batch else {
            return Err("the `batch` field must be an array of source strings".to_string());
        };
        let sources: Vec<&str> = items
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| "batch items must be strings".to_string())
            })
            .collect::<Result<_, _>>()?;
        return Ok(batch_response(service, &sources));
    }
    if request.get("stats").is_some() {
        return Ok(Value::obj([("cache", cache_value(service))]));
    }
    if let Some(command) = request.get("cache") {
        let command = command.as_str().ok_or_else(|| {
            "the `cache` field must be \"stats\", \"flush\" or \"clear\"".to_string()
        })?;
        return cache_command(service, command);
    }
    if let Some(command) = request.get("metrics") {
        if command.as_str() != Some("dump") {
            return Err("the `metrics` field must be \"dump\"".to_string());
        }
        return Ok(Value::obj([("metrics", metrics_value(service)?)]));
    }
    if request.get("health").is_some() {
        return Ok(health_value(service));
    }
    if let Some(command) = request.get("replica") {
        return replica_command(service, command, request);
    }
    Err(
        "unknown request: expected `check`, `batch`, `stats`, `cache`, `metrics`, `health` \
         or `replica`"
            .to_string(),
    )
}

/// The `{"health": true}` (and HTTP `GET /healthz`) payload: byte-identical
/// across planes; the HTTP codec additionally maps `"degraded"` to a 503
/// status line.
fn health_value(service: &Service) -> Value {
    let health = service.health();
    Value::obj([
        (
            "health",
            Value::Str(if health.ready { "ready" } else { "degraded" }.to_string()),
        ),
        (
            "reasons",
            Value::Arr(health.reasons.into_iter().map(Value::Str).collect()),
        ),
    ])
}

/// Handles the replication plane's wire objects (DESIGN.md §11):
///
/// ```text
/// {"replica":"hello","v":1,"node":t,"fp":h}   → {"replica":"state","applied":N,"fp":h}
/// {"replica":"frame","node":t,"seq":N,"data":h} → {"replica":"ack","applied":M}
/// {"replica":"snapshot","node":t,"seq":N,"data":h} → {"replica":"ack","applied":N}
/// {"replica":"status"}                        → counters for ops/tests
/// ```
///
/// A fingerprint mismatch (hello or frame) answers the structured
/// `{"error": "replica-fingerprint-mismatch"}` the sending session parks on.
fn replica_command(service: &Service, command: &Value, request: &Value) -> Result<Value, String> {
    let command = command.as_str().ok_or_else(|| {
        "the `replica` field must be \"hello\", \"frame\", \"snapshot\" or \"status\"".to_string()
    })?;
    let node = || -> Result<&str, String> {
        request
            .get("node")
            .and_then(Value::as_str)
            .ok_or_else(|| "replica requests need a `node` token".to_string())
    };
    let seq = || -> Result<u64, String> {
        request
            .get("seq")
            .and_then(Value::as_int)
            .filter(|s| *s >= 0)
            .map(|s| s as u64)
            .ok_or_else(|| "replica requests need a non-negative `seq`".to_string())
    };
    let data = || -> Result<&str, String> {
        request
            .get("data")
            .and_then(Value::as_str)
            .ok_or_else(|| "replica requests need hex `data`".to_string())
    };
    let ack = |applied: u64| {
        Value::obj([
            ("replica", Value::Str("ack".to_string())),
            ("applied", Value::Int(applied as i64)),
        ])
    };
    match command {
        "hello" => {
            let v = request.get("v").and_then(Value::as_int).unwrap_or(0);
            if v != crate::replica::REPLICA_PROTOCOL_VERSION {
                return Err(format!("unsupported replica protocol version {v}"));
            }
            let fp = request
                .get("fp")
                .and_then(Value::as_str)
                .ok_or_else(|| "replica hello needs an `fp` fingerprint".to_string())?;
            let applied = service.replica_hello(node()?, fp)?;
            Ok(Value::obj([
                ("replica", Value::Str("state".to_string())),
                ("applied", Value::Int(applied as i64)),
                (
                    "fp",
                    Value::Str(format!("{:016x}", service.engine().fingerprint())),
                ),
            ]))
        }
        "frame" => Ok(ack(service.replica_apply_frame(
            node()?,
            seq()?,
            data()?,
        )?)),
        "snapshot" => Ok(ack(service.replica_apply_snapshot(
            node()?,
            seq()?,
            data()?,
        )?)),
        "status" => Ok(Value::obj([("replica", replica_status_value(service))])),
        other => Err(format!(
            "unknown replica command `{other}`: expected \"hello\", \"frame\", \"snapshot\" \
             or \"status\""
        )),
    }
}

/// The `{"replica": "status"}` payload: outbound peer sessions plus inbound
/// apply counters — what the chaos harness and a fleet operator both read.
fn replica_status_value(service: &Service) -> Value {
    let status = service.replica_status();
    Value::obj([
        ("node", Value::Str(status.node.clone())),
        ("published", Value::Int(status.published as i64)),
        (
            "peers",
            Value::Arr(
                status
                    .peers
                    .iter()
                    .map(|p| {
                        Value::obj([
                            ("addr", Value::Str(p.addr.clone())),
                            ("state", Value::Str(p.state.to_string())),
                            ("connected", Value::Bool(p.connected)),
                            ("ever_connected", Value::Bool(p.ever_connected)),
                            ("acked", Value::Int(p.acked as i64)),
                            ("lag", Value::Int(p.lag as i64)),
                            ("shipped", Value::Int(p.shipped as i64)),
                            ("reconnects", Value::Int(p.reconnects as i64)),
                            ("snapshots_sent", Value::Int(p.snapshots_sent as i64)),
                            ("queue_dropped", Value::Int(p.queue_dropped as i64)),
                            ("incompatible", Value::Int(p.incompatible as i64)),
                            ("backoff_ms", Value::Int(p.backoff_ms as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "inbound",
            Value::obj([
                ("sources", Value::Int(status.inbound.sources as i64)),
                ("hellos", Value::Int(status.inbound.hellos as i64)),
                (
                    "hellos_rejected",
                    Value::Int(status.inbound.hellos_rejected as i64),
                ),
                (
                    "frames_applied",
                    Value::Int(status.inbound.frames_applied as i64),
                ),
                (
                    "frames_duplicate",
                    Value::Int(status.inbound.frames_duplicate as i64),
                ),
                (
                    "frames_rejected",
                    Value::Int(status.inbound.frames_rejected as i64),
                ),
                (
                    "snapshots_applied",
                    Value::Int(status.inbound.snapshots_applied as i64),
                ),
            ]),
        ),
    ])
}

/// The `{"metrics": "dump"}` payload: the merged registry snapshot,
/// round-tripped through the serializer and this crate's parser so the
/// daemon emits exactly the schema [`rel_obs::RegistrySnapshot::to_json`]
/// documents.
/// Re-parsing our own serializer's output should never fail; if it somehow
/// does (a registry name with bytes the parser rejects, say), the daemon
/// answers with an error and keeps serving instead of panicking mid-session.
fn metrics_value(service: &Service) -> Result<Value, String> {
    let dump = service.metrics_snapshot().to_json();
    json::parse(&dump).map_err(|e| format!("metrics snapshot did not round-trip: {e}"))
}

/// Handles `{"cache": "stats" | "flush" | "clear"}`.
fn cache_command(service: &Service, command: &str) -> Result<Value, String> {
    match command {
        "stats" => Ok(Value::obj([("cache", full_cache_value(service))])),
        "flush" => {
            let verdicts = service.save_cache()?;
            Ok(Value::obj([
                ("flushed", Value::Bool(true)),
                ("verdicts", Value::Int(verdicts as i64)),
                ("cache", full_cache_value(service)),
            ]))
        }
        "clear" => {
            service.clear_cache();
            Ok(Value::obj([
                ("cleared", Value::Bool(true)),
                ("cache", full_cache_value(service)),
            ]))
        }
        other => Err(format!(
            "unknown cache command `{other}`: expected \"stats\", \"flush\" or \"clear\""
        )),
    }
}

fn check_response(service: &Service, source: &str) -> Value {
    match service.check_source(source) {
        Ok(report) => Value::obj([
            ("ok", Value::Bool(report.all_ok())),
            ("defs", defs_value(&report)),
            ("cache", cache_value(service)),
        ]),
        Err(e) => Value::obj([("error", Value::Str(e)), ("cache", cache_value(service))]),
    }
}

fn batch_response(service: &Service, sources: &[&str]) -> Value {
    let jobs: Vec<crate::batch::BatchJob> = sources
        .iter()
        .enumerate()
        .map(|(i, src)| crate::batch::BatchJob::new(format!("job-{i}"), *src))
        .collect();
    let results = service.check_batch(&jobs);
    let stats = crate::batch::BatchStats::of(&results);
    Value::obj([
        ("ok", Value::Bool(results.iter().all(|r| r.ok()))),
        ("jobs", Value::Arr(results.iter().map(job_value).collect())),
        ("jobs_ok", Value::Int(stats.jobs_ok as i64)),
        ("cache", cache_value(service)),
    ])
}

/// One entry of a batch response's `jobs` array (also the per-item shape of
/// streamed batch results on the reactor plane).
pub(crate) fn job_value(result: &crate::batch::BatchResult) -> Value {
    match &result.outcome {
        Ok(report) => Value::obj([
            ("name", Value::Str(result.name.clone())),
            ("ok", Value::Bool(report.all_ok())),
            ("defs", defs_value(report)),
        ]),
        Err(e) => Value::obj([
            ("name", Value::Str(result.name.clone())),
            ("ok", Value::Bool(false)),
            ("error", Value::Str(e.clone())),
        ]),
    }
}

fn defs_value(report: &ProgramReport) -> Value {
    Value::Arr(report.defs.iter().map(def_value).collect())
}

fn def_value(def: &DefReport) -> Value {
    Value::obj([
        ("name", Value::Str(def.name.clone())),
        ("ok", Value::Bool(def.ok)),
        // Verdict provenance: `true` when every obligation was proved
        // (symbolic / Fourier–Motzkin), `false` when the verdict leaned on
        // the bounded numeric grid (or the definition failed).
        ("proved", Value::Bool(def.proved)),
        (
            "error",
            match &def.error {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        ),
        (
            "typecheck_us",
            Value::Int(def.timings.typecheck.as_micros() as i64),
        ),
        (
            "exelim_us",
            Value::Int(def.timings.existential_elim.as_micros() as i64),
        ),
        (
            "solving_us",
            Value::Int(def.timings.solving.as_micros() as i64),
        ),
        ("constraint_atoms", Value::Int(def.constraint_atoms as i64)),
        ("cache_hits", Value::Int(def.stats.cache_hits as i64)),
        ("cache_misses", Value::Int(def.stats.cache_misses as i64)),
        (
            "programs_compiled",
            Value::Int(def.stats.programs_compiled as i64),
        ),
        (
            "program_cache_hits",
            Value::Int(def.stats.program_cache_hits as i64),
        ),
        (
            "points_evaluated",
            Value::Int(def.stats.points_evaluated as i64),
        ),
        ("fm_proved", Value::Int(def.stats.fm_proved as i64)),
        ("grid_accepted", Value::Int(def.stats.grid_accepted as i64)),
        ("fm_memo_hits", Value::Int(def.stats.fm_memo_hits as i64)),
        (
            "fm_memo_misses",
            Value::Int(def.stats.fm_memo_misses as i64),
        ),
        (
            "exelim_candidates_pruned",
            Value::Int(def.stats.exelim_candidates_pruned as i64),
        ),
        // Why the existential search gave up, when it did: one of
        // "attempt-budget", "row-cap", "branch-cap", "component-blowup".
        (
            "search_exhausted",
            match def.stats.search_exhausted {
                Some(reason) => Value::Str(reason.as_str().to_string()),
                None => Value::Null,
            },
        ),
        ("skipped_unchanged", Value::Bool(def.skipped_unchanged)),
    ])
}

pub(crate) fn cache_value(service: &Service) -> Value {
    let stats = service.cache_stats();
    Value::obj([
        ("hits", Value::Int(stats.hits as i64)),
        ("misses", Value::Int(stats.misses as i64)),
        ("entries", Value::Int(stats.entries as i64)),
    ])
}

/// The `{"cache": "stats"}` payload: validity-cache counters plus the
/// program memo, def index and persistence-layer counters.
///
/// Read out of the metrics registry's cache gauges (refreshed from the live
/// cache atomics by [`Service::publish_cache_gauges`]) so the protocol and
/// the `{"metrics": "dump"}` snapshot report from one source of truth.
fn full_cache_value(service: &Service) -> Value {
    service.publish_cache_gauges();
    let snapshot = service.metrics().snapshot();
    let persist = service.persist_stats();
    let gauge = |name: &str| -> Value {
        Value::Int(
            snapshot
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0),
        )
    };
    Value::obj([
        ("hits", gauge("cache.validity.hits")),
        ("misses", gauge("cache.validity.misses")),
        ("entries", gauge("cache.validity.entries")),
        ("evictions", gauge("cache.validity.evictions")),
        ("program_hits", gauge("cache.programs.hits")),
        ("program_misses", gauge("cache.programs.misses")),
        ("program_entries", gauge("cache.programs.entries")),
        ("def_entries", gauge("cache.defs.entries")),
        ("loads", gauge("persist.loads")),
        ("saves", gauge("persist.saves")),
        (
            "file",
            match &persist.path {
                Some(p) => Value::Str(p.display().to_string()),
                None => Value::Null,
            },
        ),
        (
            "wal",
            match &persist.wal {
                Some(w) => Value::obj([
                    ("records", Value::Int(w.records as i64)),
                    ("bytes", Value::Int(w.bytes as i64)),
                    ("appends", Value::Int(w.appends as i64)),
                    ("append_errors", Value::Int(w.append_errors as i64)),
                    ("compactions", Value::Int(w.compactions as i64)),
                    ("replayed", Value::Int(w.replayed as i64)),
                    ("truncated_tails", Value::Int(w.truncated_tails as i64)),
                    ("corrupt_skipped", Value::Int(w.corrupt_skipped as i64)),
                    (
                        "fingerprint_rejected",
                        Value::Int(w.fingerprint_rejected as i64),
                    ),
                    ("tmp_reaped", Value::Int(w.tmp_reaped as i64)),
                ]),
                None => Value::Null,
            },
        ),
    ])
}
