//! The daemon front end: a newline-delimited JSON request/response protocol.
//!
//! One request per line on the reader, one response per line on the writer —
//! the shape external load harnesses want for sustained traffic.  Requests:
//!
//! ```text
//! {"check": "<source>"}            check a program, report per-def verdicts
//! {"check": "<source>", "id": X}   same, echoing X back in the response
//! {"batch": ["<src>", ...]}        check several programs on the worker pool
//! {"stats": true}                  report service/cache counters
//! {"cache": "stats"}               full cache counters (validity + programs
//!                                  + persistence loads/saves)
//! {"cache": "flush"}               snapshot the warm state to the cache file
//! {"cache": "clear"}               drop all memoized state
//! ```
//!
//! Every response carries `"cache"` counters so a harness can watch hit rates
//! climb as traffic warms the validity cache.  Malformed lines produce an
//! `{"error": ...}` response instead of killing the session: a serving
//! process must survive bad input.

use std::io::{BufRead, Write};

use birelcost::{DefReport, ProgramReport};

use crate::json::{self, Value};
use crate::service::Service;

/// Counters for one `serve` session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed.
    pub requests: usize,
    /// Requests answered with an `error` field.
    pub errors: usize,
}

/// Runs the request/response loop until the reader is exhausted.
pub fn serve<R: BufRead, W: Write>(
    service: &Service,
    reader: R,
    mut writer: W,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        let response = respond(service, &line);
        if response.get("error").is_some() {
            summary.errors += 1;
        }
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
    Ok(summary)
}

/// Computes the response for one request line.
pub fn respond(service: &Service, line: &str) -> Value {
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return Value::obj([("error", Value::Str(format!("malformed request: {e}")))]),
    };
    let id = request.get("id").cloned();
    let mut response = match dispatch(service, &request) {
        Ok(fields) => fields,
        Err(message) => Value::obj([("error", Value::Str(message))]),
    };
    if let (Some(id), Value::Obj(fields)) = (id, &mut response) {
        fields.insert(0, ("id".to_string(), id));
    }
    response
}

fn dispatch(service: &Service, request: &Value) -> Result<Value, String> {
    if let Some(source) = request.get("check") {
        let source = source
            .as_str()
            .ok_or_else(|| "the `check` field must be a string of source code".to_string())?;
        return Ok(check_response(service, source));
    }
    if let Some(batch) = request.get("batch") {
        let Value::Arr(items) = batch else {
            return Err("the `batch` field must be an array of source strings".to_string());
        };
        let sources: Vec<&str> = items
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| "batch items must be strings".to_string())
            })
            .collect::<Result<_, _>>()?;
        return Ok(batch_response(service, &sources));
    }
    if request.get("stats").is_some() {
        return Ok(Value::obj([("cache", cache_value(service))]));
    }
    if let Some(command) = request.get("cache") {
        let command = command.as_str().ok_or_else(|| {
            "the `cache` field must be \"stats\", \"flush\" or \"clear\"".to_string()
        })?;
        return cache_command(service, command);
    }
    Err("unknown request: expected `check`, `batch`, `stats` or `cache`".to_string())
}

/// Handles `{"cache": "stats" | "flush" | "clear"}`.
fn cache_command(service: &Service, command: &str) -> Result<Value, String> {
    match command {
        "stats" => Ok(Value::obj([("cache", full_cache_value(service))])),
        "flush" => {
            let verdicts = service.save_cache()?;
            Ok(Value::obj([
                ("flushed", Value::Bool(true)),
                ("verdicts", Value::Int(verdicts as i64)),
                ("cache", full_cache_value(service)),
            ]))
        }
        "clear" => {
            service.clear_cache();
            Ok(Value::obj([
                ("cleared", Value::Bool(true)),
                ("cache", full_cache_value(service)),
            ]))
        }
        other => Err(format!(
            "unknown cache command `{other}`: expected \"stats\", \"flush\" or \"clear\""
        )),
    }
}

fn check_response(service: &Service, source: &str) -> Value {
    match service.check_source(source) {
        Ok(report) => Value::obj([
            ("ok", Value::Bool(report.all_ok())),
            ("defs", defs_value(&report)),
            ("cache", cache_value(service)),
        ]),
        Err(e) => Value::obj([("error", Value::Str(e)), ("cache", cache_value(service))]),
    }
}

fn batch_response(service: &Service, sources: &[&str]) -> Value {
    let jobs: Vec<crate::batch::BatchJob> = sources
        .iter()
        .enumerate()
        .map(|(i, src)| crate::batch::BatchJob::new(format!("job-{i}"), *src))
        .collect();
    let results = service.check_batch(&jobs);
    let stats = crate::batch::BatchStats::of(&results);
    Value::obj([
        ("ok", Value::Bool(results.iter().all(|r| r.ok()))),
        (
            "jobs",
            Value::Arr(
                results
                    .iter()
                    .map(|r| match &r.outcome {
                        Ok(report) => Value::obj([
                            ("name", Value::Str(r.name.clone())),
                            ("ok", Value::Bool(report.all_ok())),
                            ("defs", defs_value(report)),
                        ]),
                        Err(e) => Value::obj([
                            ("name", Value::Str(r.name.clone())),
                            ("ok", Value::Bool(false)),
                            ("error", Value::Str(e.clone())),
                        ]),
                    })
                    .collect(),
            ),
        ),
        ("jobs_ok", Value::Int(stats.jobs_ok as i64)),
        ("cache", cache_value(service)),
    ])
}

fn defs_value(report: &ProgramReport) -> Value {
    Value::Arr(report.defs.iter().map(def_value).collect())
}

fn def_value(def: &DefReport) -> Value {
    Value::obj([
        ("name", Value::Str(def.name.clone())),
        ("ok", Value::Bool(def.ok)),
        // Verdict provenance: `true` when every obligation was proved
        // (symbolic / Fourier–Motzkin), `false` when the verdict leaned on
        // the bounded numeric grid (or the definition failed).
        ("proved", Value::Bool(def.proved)),
        (
            "error",
            match &def.error {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        ),
        (
            "typecheck_us",
            Value::Int(def.timings.typecheck.as_micros() as i64),
        ),
        (
            "exelim_us",
            Value::Int(def.timings.existential_elim.as_micros() as i64),
        ),
        (
            "solving_us",
            Value::Int(def.timings.solving.as_micros() as i64),
        ),
        ("constraint_atoms", Value::Int(def.constraint_atoms as i64)),
        ("cache_hits", Value::Int(def.cache_hits as i64)),
        ("cache_misses", Value::Int(def.cache_misses as i64)),
        (
            "programs_compiled",
            Value::Int(def.programs_compiled as i64),
        ),
        (
            "program_cache_hits",
            Value::Int(def.program_cache_hits as i64),
        ),
        ("points_evaluated", Value::Int(def.points_evaluated as i64)),
        ("fm_proved", Value::Int(def.fm_proved as i64)),
        ("grid_accepted", Value::Int(def.grid_accepted as i64)),
        ("fm_memo_hits", Value::Int(def.fm_memo_hits as i64)),
        ("fm_memo_misses", Value::Int(def.fm_memo_misses as i64)),
        (
            "exelim_candidates_pruned",
            Value::Int(def.exelim_candidates_pruned as i64),
        ),
        ("skipped_unchanged", Value::Bool(def.skipped_unchanged)),
    ])
}

fn cache_value(service: &Service) -> Value {
    let stats = service.cache_stats();
    Value::obj([
        ("hits", Value::Int(stats.hits as i64)),
        ("misses", Value::Int(stats.misses as i64)),
        ("entries", Value::Int(stats.entries as i64)),
    ])
}

/// The `{"cache": "stats"}` payload: validity-cache counters plus the
/// program memo, def index and persistence-layer counters.
fn full_cache_value(service: &Service) -> Value {
    let validity = service.cache_stats();
    let programs = service.program_cache_stats();
    let persist = service.persist_stats();
    Value::obj([
        ("hits", Value::Int(validity.hits as i64)),
        ("misses", Value::Int(validity.misses as i64)),
        ("entries", Value::Int(validity.entries as i64)),
        ("evictions", Value::Int(validity.evictions as i64)),
        ("program_hits", Value::Int(programs.hits as i64)),
        ("program_misses", Value::Int(programs.misses as i64)),
        ("program_entries", Value::Int(programs.entries as i64)),
        ("def_entries", Value::Int(service.def_index().len() as i64)),
        ("loads", Value::Int(persist.loads as i64)),
        ("saves", Value::Int(persist.saves as i64)),
        (
            "file",
            match &persist.path {
                Some(p) => Value::Str(p.display().to_string()),
                None => Value::Null,
            },
        ),
    ])
}
