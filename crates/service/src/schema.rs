//! Validates a metrics dump against the documented schema (DESIGN.md §8.2).
//!
//! The CI `metrics-schema` job runs the verified corpus with
//! `--metrics-out`, then feeds the file through `birelcost validate-metrics`,
//! which lands here.  The checker is strict about shape (every histogram
//! must carry exactly the documented summary fields, percentiles must be
//! monotone) but says nothing about *which* metric names exist — new
//! counters may appear freely; renames and type changes must bump
//! [`rel_obs::SCHEMA_VERSION`].

use crate::json::{self, Value};

/// What a valid dump contained, for `validate-metrics` to report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Counter entries.
    pub counters: usize,
    /// Gauge entries.
    pub gauges: usize,
    /// Histogram entries.
    pub histograms: usize,
}

/// The histogram summary fields, in serialization order.
const HISTOGRAM_FIELDS: [&str; 6] = ["count", "sum_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"];

/// Parses and validates one metrics dump.  Accepts either a bare registry
/// dump (as written by `check --metrics-out`) or a daemon response wrapping
/// it under a `"metrics"` key.
///
/// # Errors
///
/// A human-readable description of the first schema violation found.
pub fn validate_metrics(text: &str) -> Result<MetricsSummary, String> {
    let parsed = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let dump = parsed.get("metrics").unwrap_or(&parsed);

    let version = dump
        .get("schema_version")
        .ok_or("missing `schema_version`")?
        .as_int()
        .ok_or("`schema_version` must be an integer")?;
    if version != rel_obs::SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version {version} != supported version {}",
            rel_obs::SCHEMA_VERSION
        ));
    }

    let counters = int_section(dump, "counters", false)?;
    let gauges = int_section(dump, "gauges", true)?;

    let Some(Value::Obj(histograms)) = dump.get("histograms") else {
        return Err("missing or non-object `histograms` section".to_string());
    };
    for (name, h) in histograms {
        validate_histogram(name, h)?;
    }
    Ok(MetricsSummary {
        counters,
        gauges,
        histograms: histograms.len(),
    })
}

/// Checks that `section` is an object of integers (non-negative unless
/// `signed`), returning the entry count.
fn int_section(dump: &Value, section: &str, signed: bool) -> Result<usize, String> {
    let Some(Value::Obj(fields)) = dump.get(section) else {
        return Err(format!("missing or non-object `{section}` section"));
    };
    for (name, v) in fields {
        let n = v
            .as_int()
            .ok_or_else(|| format!("{section}.{name} must be an integer"))?;
        if !signed && n < 0 {
            return Err(format!("{section}.{name} must be non-negative, got {n}"));
        }
    }
    Ok(fields.len())
}

fn validate_histogram(name: &str, h: &Value) -> Result<(), String> {
    let Value::Obj(fields) = h else {
        return Err(format!("histograms.{name} must be an object"));
    };
    let mut values = [0i64; HISTOGRAM_FIELDS.len()];
    for (i, field) in HISTOGRAM_FIELDS.iter().enumerate() {
        let v = h
            .get(field)
            .ok_or_else(|| format!("histograms.{name} is missing `{field}`"))?
            .as_int()
            .ok_or_else(|| format!("histograms.{name}.{field} must be an integer"))?;
        if v < 0 {
            return Err(format!("histograms.{name}.{field} must be non-negative"));
        }
        values[i] = v;
    }
    if let Some((extra, _)) = fields
        .iter()
        .find(|(k, _)| !HISTOGRAM_FIELDS.contains(&k.as_str()))
    {
        return Err(format!("histograms.{name} has unknown field `{extra}`"));
    }
    let [count, _sum, p50, p90, p99, _max] = values;
    if p50 > p90 || p90 > p99 {
        return Err(format!(
            "histograms.{name} percentiles not monotone: p50={p50} p90={p90} p99={p99}"
        ));
    }
    if count == 0 && values.iter().any(|&v| v != 0) {
        return Err(format!(
            "histograms.{name} has count 0 but non-zero summary fields"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_obs::Registry;

    #[test]
    fn validates_a_real_dump() {
        let reg = Registry::new();
        reg.counter("fm.proved").add(3);
        reg.set_gauge("cache.validity.entries", 12);
        reg.histogram("serve.request_ns").observe_ns(1_000);
        let summary = validate_metrics(&reg.dump_json()).expect("dump must validate");
        assert_eq!(
            summary,
            MetricsSummary {
                counters: 1,
                gauges: 1,
                histograms: 1
            }
        );
    }

    #[test]
    fn accepts_the_daemon_wrapper() {
        let wrapped = format!("{{\"metrics\":{}}}", Registry::new().dump_json());
        assert!(validate_metrics(&wrapped).is_ok());
    }

    #[test]
    fn rejects_schema_drift() {
        // Version mismatch.
        let err = validate_metrics(
            "{\"schema_version\":999,\"counters\":{},\"gauges\":{},\"histograms\":{}}",
        )
        .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        // Missing histogram field.
        let err = validate_metrics(
            "{\"schema_version\":1,\"counters\":{},\"gauges\":{},\
             \"histograms\":{\"h\":{\"count\":1}}}",
        )
        .unwrap_err();
        assert!(err.contains("missing `sum_ns`"), "{err}");
        // Unknown histogram field (a rename shows up as this).
        let err = validate_metrics(
            "{\"schema_version\":1,\"counters\":{},\"gauges\":{},\
             \"histograms\":{\"h\":{\"count\":0,\"sum_ns\":0,\"p50_ns\":0,\
             \"p90_ns\":0,\"p99_ns\":0,\"max_ns\":0,\"mean_ns\":0}}}",
        )
        .unwrap_err();
        assert!(err.contains("unknown field `mean_ns`"), "{err}");
        // Negative counter.
        let err = validate_metrics(
            "{\"schema_version\":1,\"counters\":{\"c\":-1},\"gauges\":{},\"histograms\":{}}",
        )
        .unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        // Non-monotone percentiles.
        let err = validate_metrics(
            "{\"schema_version\":1,\"counters\":{},\"gauges\":{},\
             \"histograms\":{\"h\":{\"count\":2,\"sum_ns\":9,\"p50_ns\":8,\
             \"p90_ns\":4,\"p99_ns\":8,\"max_ns\":8}}}",
        )
        .unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }
}
