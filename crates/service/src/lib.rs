//! `rel-service`: a concurrent batch-checking service for BiRelCost.
//!
//! The checker in [`birelcost`] is a one-shot library call; this crate turns
//! it into a serving subsystem (DESIGN.md §5):
//!
//! * [`batch`] — a batch scheduler that checks many programs concurrently on
//!   a `std::thread` worker pool, aggregating per-job
//!   [`DefReport`](birelcost::DefReport)/[`PhaseTimings`](birelcost::PhaseTimings);
//! * [`service`] — the [`Service`] façade wiring a shared
//!   [`Engine`](birelcost::Engine) to a sharded
//!   [constraint-validity cache](rel_constraint::ShardedValidityCache), so
//!   verdicts computed for one request are reused by every later request;
//! * [`daemon`] — a newline-delimited JSON front end (`birelcost serve`)
//!   speaking `{"check": "<source>"}` → per-def verdicts, timings and cache
//!   counters over stdin/stdout, so external harnesses can drive sustained
//!   traffic;
//! * [`codec`] — the wire-format seam: NDJSON and hand-rolled HTTP/1.1
//!   framings of the *same* JSON content, so both planes answer
//!   byte-identical payloads (DESIGN.md §10);
//! * [`reactor`] — the multiplexed serving plane: a `poll(2)` readiness
//!   loop driving many connections over one bounded worker queue, with
//!   per-request deadlines, explicit backpressure and streamed batches;
//! * [`json`] — the minimal JSON layer backing the protocol (no external
//!   dependencies are available in this build environment).
//!
//! # Quick start
//!
//! ```
//! use rel_service::{BatchJob, Service, ServiceConfig};
//!
//! // workers: 1 keeps this doctest deterministic; with N workers identical
//! // jobs that run *simultaneously* can both miss before either stores.
//! let service = Service::new(ServiceConfig { workers: 1, cache_shards: 16 });
//! let src = "
//!     def not2 : boolr -> boolr = lam b. if b then false else true;
//!     def use : boolr -> boolr = lam b. not2 (not2 b);
//! ";
//! let jobs = vec![BatchJob::new("a", src), BatchJob::new("b", src)];
//! let results = service.check_batch(&jobs);
//! assert!(results.iter().all(|r| r.ok()));
//! // The second identical job was answered from the validity cache.
//! assert!(service.cache_stats().hits > 0);
//! ```

pub mod batch;
pub mod codec;
pub mod daemon;
pub mod faultnet;
pub mod json;
pub mod reactor;
pub mod replica;
pub mod schema;
pub mod service;

pub use batch::{
    check_batch, check_batch_with, check_job, check_job_with, BatchJob, BatchResult, BatchStats,
};
pub use codec::{content_line, make_codec, Codec, CodecKind, CodecLimits, Decode};
pub use daemon::{respond, serve, serve_tcp, serve_with, ServeOptions, ServeSummary};
pub use faultnet::{NetFault, NetScript, RealNet, SimConn, SimNet, Transport, Wire};
pub use reactor::{serve_reactor, ReactorOptions, ReactorSummary};
pub use replica::{ReplicaOptions, ReplicaStatus};
pub use schema::{validate_metrics, MetricsSummary};
pub use service::{
    available_workers, Health, LoadOutcome, PeriodicSave, PersistStats, Service, ServiceConfig,
};
