//! The batch scheduler: checks many programs concurrently on a worker pool.
//!
//! Jobs are claimed from a shared atomic counter (work stealing is pointless
//! here: jobs are coarse and the counter is contention-free), checked on plain
//! `std::thread` workers, and results are returned in submission order.  All
//! workers share one [`Engine`] — the engine is stateless across calls — and
//! therefore one validity cache, which is where the cross-request speedup
//! comes from.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use birelcost::{DefIndex, Engine, ProgramReport};
use rel_constraint::SolveStats;
use rel_syntax::parse_program;

/// One unit of work: a named source program to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Client-chosen job label (reported back verbatim).
    pub name: String,
    /// BiRelCost surface syntax.
    pub source: String,
}

impl BatchJob {
    /// Creates a job.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchJob {
        BatchJob {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The job's label.
    pub name: String,
    /// Per-definition reports, or the parse error that prevented checking.
    pub outcome: Result<ProgramReport, String>,
    /// Wall-clock time for this job (parse + check).
    pub wall: Duration,
}

impl BatchResult {
    /// `true` when the job parsed and every definition checked.
    pub fn ok(&self) -> bool {
        matches!(&self.outcome, Ok(report) if report.all_ok())
    }
}

/// Aggregate statistics over one batch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of jobs processed.
    pub jobs: usize,
    /// Jobs that parsed and fully checked.
    pub jobs_ok: usize,
    /// Total definitions checked across all jobs.
    pub defs: usize,
    /// Definitions that checked.
    pub defs_ok: usize,
    /// Definitions skipped by incremental re-checking (unchanged input hash).
    pub skipped_unchanged: usize,
    /// Definitions whose verdict was proved (symbolic / Fourier–Motzkin)
    /// rather than grid-checked.
    pub proved_defs: usize,
    /// Every solver counter, summed across all jobs through the one
    /// canonical [`SolveStats::merge`] — batch workers used to re-stitch
    /// the counters field-by-field here, which silently dropped any newly
    /// added counter from the batch path.
    pub solve: SolveStats,
}

impl BatchStats {
    /// Accumulates the stats of a batch of results.
    pub fn of(results: &[BatchResult]) -> BatchStats {
        let mut stats = BatchStats {
            jobs: results.len(),
            ..BatchStats::default()
        };
        for r in results {
            if r.ok() {
                stats.jobs_ok += 1;
            }
            if let Ok(report) = &r.outcome {
                stats.defs += report.defs.len();
                stats.defs_ok += report.defs.iter().filter(|d| d.ok).count();
                stats.skipped_unchanged += report.skipped_unchanged();
                stats.proved_defs += report.proved_defs();
                stats.solve.merge(&report.solve_stats());
            }
        }
        stats
    }
}

/// Checks one job (parse + check) with timing.
pub fn check_job(engine: &Engine, job: &BatchJob) -> BatchResult {
    check_job_with(engine, None, job)
}

/// [`check_job`] with an optional [`DefIndex`] for incremental re-checking:
/// definitions whose input hash the index already records are skipped and
/// replayed (see `Engine::check_program_with`).
pub fn check_job_with(engine: &Engine, index: Option<&DefIndex>, job: &BatchJob) -> BatchResult {
    let start = Instant::now();
    let outcome = match parse_program(&job.source) {
        Ok(program) => Ok(engine.check_program_with(&program, index)),
        Err(e) => Err(format!("parse error: {e}")),
    };
    BatchResult {
        name: job.name.clone(),
        outcome,
        wall: start.elapsed(),
    }
}

/// Checks `jobs` on `workers` threads, returning results in submission order.
///
/// `workers == 0` or `workers == 1` degrade to a sequential in-thread loop
/// (no threads spawned), so callers can use one code path for both modes.
pub fn check_batch(engine: &Engine, jobs: &[BatchJob], workers: usize) -> Vec<BatchResult> {
    check_batch_with(engine, None, jobs, workers)
}

/// [`check_batch`] with an optional shared [`DefIndex`] (thread-safe; the
/// workers race to record fresh hashes, which is benign — both would record
/// the same verdict).
pub fn check_batch_with(
    engine: &Engine,
    index: Option<&DefIndex>,
    jobs: &[BatchJob],
    workers: usize,
) -> Vec<BatchResult> {
    if workers <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|job| check_job_with(engine, index, job))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<BatchResult>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let workers = workers.min(jobs.len());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = check_job_with(engine, index, &jobs[i]);
                results.lock().expect("batch results poisoned")[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .expect("batch results poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<BatchJob> {
        vec![
            BatchJob::new("id", "def id : boolr -> boolr = lam x. x;"),
            BatchJob::new("bad-parse", "def broken : boolr ="),
            BatchJob::new("ill-typed", "def bad : boolr = 3;"),
            BatchJob::new(
                "two-defs",
                r#"
                    def not2 : boolr -> boolr = lam b. if b then false else true;
                    def use : boolr -> boolr = lam b. not2 (not2 b);
                "#,
            ),
        ]
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let engine = Engine::new();
        let seq = check_batch(&engine, &jobs(), 1);
        let par = check_batch(&engine, &jobs(), 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name, "order must be submission order");
            assert_eq!(s.ok(), p.ok());
            assert_eq!(s.outcome.is_err(), p.outcome.is_err());
        }
        assert!(seq[0].ok());
        assert!(seq[1].outcome.is_err());
        assert!(!seq[2].ok());
        assert!(seq[3].ok());
    }

    #[test]
    fn batch_stats_aggregate() {
        let engine = Engine::new();
        let results = check_batch(&engine, &jobs(), 2);
        let stats = BatchStats::of(&results);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.jobs_ok, 2);
        assert_eq!(stats.defs, 4); // id + bad + not2 + use (parse failure has none)
        assert_eq!(stats.defs_ok, 3);
    }
}
