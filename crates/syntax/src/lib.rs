//! Abstract syntax for the BiRelCost language stack.
//!
//! This crate defines everything that is *syntax* in the paper:
//!
//! * [`types::UnaryType`] — the unary (DML-style) types `A` with `exec(k, t)`
//!   effect annotations on arrows (§4, §5 of the paper),
//! * [`types::RelType`] — the relational types `τ` with `diff(t)` effect
//!   annotations, relational list refinements `list[n]^α τ`, the comonadic
//!   `□ τ`, and the `U (A₁, A₂)` embedding of unary typing (§3–§5),
//! * [`expr::Expr`] — the surface expressions shared by relSTLC, RelRef,
//!   RelRefU and RelCost (expressions carry no index terms, exactly as in the
//!   paper; programmers only write type annotations),
//! * [`program::Program`] — sequences of top-level annotated definitions,
//! * a lexer/parser ([`parser::parse_program`]) and pretty-printer for an
//!   ML-like concrete syntax used by the benchmark suite and the CLI,
//! * [`SystemLevel`] — which of the four systems of the paper a term should
//!   be checked in.
//!
//! # Concrete syntax at a glance
//!
//! ```text
//! def map : box(tv a ->[t] tv b) -> forall n::nat. forall al::nat.
//!           list[n; al] tv a ->[t * al] list[n; al] tv b
//! = fix map(f). Lam. Lam. lam l.
//!     case l of nil -> nil | h :: tl -> cons(f h, map f [] [] tl);
//! ```

pub mod expr;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod token;
pub mod types;

pub use expr::{Expr, PrimOp, Var};
pub use parser::{parse_expr, parse_program, parse_rel_type, ParseError};
pub use program::{Def, Program};
pub use types::{CostBounds, RelType, SystemLevel, UnaryType};
