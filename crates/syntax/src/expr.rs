//! Surface expressions.
//!
//! The expression language is shared by all four systems of the paper
//! (relSTLC ⊂ RelRef ⊂ RelRefU ⊂ RelCost).  Crucially — and exactly as in the
//! paper — surface expressions carry **no index terms**: index abstraction is
//! the anonymous `Λ. e`, index application is `e []`, and `pack e` has no
//! witness.  The only programmer-supplied typing information is the optional
//! annotation `(e : τ)`, used by the bidirectional checker to switch from
//! inference to checking mode at β-redexes and at top-level definitions.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use rel_index::Idx;

use crate::types::RelType;

/// A program variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a program variable.
    pub fn new(name: impl Into<String>) -> Var {
        Var(Arc::from(name.into()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

/// Primitive operations on integers and booleans.
///
/// Primitives evaluate synchronously in the two related runs, so they
/// contribute unary cost but no *relative* cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating; division by zero evaluates to zero).
    Div,
    /// Integer equality, returning a boolean.
    Eq,
    /// Integer `≤`.
    Leq,
    /// Integer `<`.
    Lt,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Integer modulus.
    Mod,
}

impl PrimOp {
    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not => 1,
            _ => 2,
        }
    }

    /// Returns `true` if the result is a boolean.
    pub fn returns_bool(self) -> bool {
        matches!(
            self,
            PrimOp::Eq | PrimOp::Leq | PrimOp::Lt | PrimOp::And | PrimOp::Or | PrimOp::Not
        )
    }

    /// Returns `true` if the operands are booleans.
    pub fn takes_bools(self) -> bool {
        matches!(self, PrimOp::And | PrimOp::Or | PrimOp::Not)
    }

    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Eq => "==",
            PrimOp::Leq => "<=",
            PrimOp::Lt => "<",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
            PrimOp::Not => "not",
            PrimOp::Mod => "%",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A surface expression of RelCost (and its subsystems).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable occurrence.
    Var(Var),
    /// The unit value `()`.
    Unit,
    /// A boolean literal.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// A primitive operation applied to its operands.
    Prim(PrimOp, Vec<Expr>),
    /// `if e then e₁ else e₂`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `λx. e`.
    Lam(Var, Box<Expr>),
    /// `fix f(x). e` — recursive function definition.
    Fix(Var, Var, Box<Expr>),
    /// Application `e₁ e₂`.
    App(Box<Expr>, Box<Expr>),
    /// Index abstraction `Λ. e` (no index variable in the term, as in RelRef).
    ILam(Box<Expr>),
    /// Index application `e []`.
    IApp(Box<Expr>),
    /// The empty list.
    Nil,
    /// `cons(e₁, e₂)`.
    Cons(Box<Expr>, Box<Expr>),
    /// `case e of nil → e₁ | h :: tl → e₂`.
    CaseList {
        /// The scrutinee.
        scrut: Box<Expr>,
        /// The nil branch.
        nil_branch: Box<Expr>,
        /// Name bound to the head in the cons branch.
        head: Var,
        /// Name bound to the tail in the cons branch.
        tail: Var,
        /// The cons branch.
        cons_branch: Box<Expr>,
    },
    /// Pair construction.
    Pair(Box<Expr>, Box<Expr>),
    /// First projection.
    Fst(Box<Expr>),
    /// Second projection.
    Snd(Box<Expr>),
    /// `let x = e₁ in e₂`.
    Let(Var, Box<Expr>, Box<Expr>),
    /// `pack e` — introduction of an existential index type (no witness in
    /// the surface syntax).
    Pack(Box<Expr>),
    /// `unpack e₁ as x in e₂` — elimination of an existential index type.
    Unpack(Box<Expr>, Var, Box<Expr>),
    /// `clet e₁ as x in e₂` — elimination of the constrained type `C & τ`.
    CLet(Box<Expr>, Var, Box<Expr>),
    /// `celim e` — elimination of the constrained type `C ⊃ τ`.
    CElim(Box<Expr>),
    /// A type annotation `(e : τ)`, optionally also annotating the relative
    /// cost to check the pair against.
    Anno(Box<Expr>, RelType, Option<Idx>),
}

impl Expr {
    /// A variable occurrence.
    pub fn var(name: impl Into<Var>) -> Expr {
        Expr::Var(name.into())
    }

    /// `λx. body`.
    pub fn lam(x: impl Into<Var>, body: Expr) -> Expr {
        Expr::Lam(x.into(), Box::new(body))
    }

    /// `fix f(x). body`.
    pub fn fix(f: impl Into<Var>, x: impl Into<Var>, body: Expr) -> Expr {
        Expr::Fix(f.into(), x.into(), Box::new(body))
    }

    /// Application `self arg` (helper for building curried applications).
    pub fn app(self, arg: Expr) -> Expr {
        Expr::App(Box::new(self), Box::new(arg))
    }

    /// Index application `self []`.
    pub fn iapp(self) -> Expr {
        Expr::IApp(Box::new(self))
    }

    /// Index abstraction `Λ. self`.
    pub fn ilam(self) -> Expr {
        Expr::ILam(Box::new(self))
    }

    /// `let x = bound in body`.
    pub fn let_in(x: impl Into<Var>, bound: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Box::new(bound), Box::new(body))
    }

    /// `if cond then then_branch else else_branch`.
    pub fn if_then_else(cond: Expr, then_branch: Expr, else_branch: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then_branch), Box::new(else_branch))
    }

    /// `cons(head, tail)`.
    pub fn cons(head: Expr, tail: Expr) -> Expr {
        Expr::Cons(Box::new(head), Box::new(tail))
    }

    /// `case scrut of nil → nil_branch | head :: tail → cons_branch`.
    pub fn case_list(
        scrut: Expr,
        nil_branch: Expr,
        head: impl Into<Var>,
        tail: impl Into<Var>,
        cons_branch: Expr,
    ) -> Expr {
        Expr::CaseList {
            scrut: Box::new(scrut),
            nil_branch: Box::new(nil_branch),
            head: head.into(),
            tail: tail.into(),
            cons_branch: Box::new(cons_branch),
        }
    }

    /// A pair.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Box::new(a), Box::new(b))
    }

    /// A binary primitive.
    pub fn prim2(op: PrimOp, a: Expr, b: Expr) -> Expr {
        Expr::Prim(op, vec![a, b])
    }

    /// Type annotation `(self : ty)`.
    pub fn anno(self, ty: RelType) -> Expr {
        Expr::Anno(Box::new(self), ty, None)
    }

    /// Type-and-cost annotation `(self : ty @ cost)`.
    pub fn anno_cost(self, ty: RelType, cost: Idx) -> Expr {
        Expr::Anno(Box::new(self), ty, Some(cost))
    }

    /// Erases all type annotations (the `|e|` operation used in the paper's
    /// soundness/completeness statements).
    pub fn erase_annotations(&self) -> Expr {
        match self {
            Expr::Anno(e, _, _) => e.erase_annotations(),
            Expr::Var(_) | Expr::Unit | Expr::Bool(_) | Expr::Int(_) | Expr::Nil => self.clone(),
            Expr::Prim(op, args) => {
                Expr::Prim(*op, args.iter().map(Expr::erase_annotations).collect())
            }
            Expr::If(a, b, c) => Expr::If(
                Box::new(a.erase_annotations()),
                Box::new(b.erase_annotations()),
                Box::new(c.erase_annotations()),
            ),
            Expr::Lam(x, e) => Expr::Lam(x.clone(), Box::new(e.erase_annotations())),
            Expr::Fix(f, x, e) => Expr::Fix(f.clone(), x.clone(), Box::new(e.erase_annotations())),
            Expr::App(a, b) => Expr::App(
                Box::new(a.erase_annotations()),
                Box::new(b.erase_annotations()),
            ),
            Expr::ILam(e) => Expr::ILam(Box::new(e.erase_annotations())),
            Expr::IApp(e) => Expr::IApp(Box::new(e.erase_annotations())),
            Expr::Cons(a, b) => Expr::Cons(
                Box::new(a.erase_annotations()),
                Box::new(b.erase_annotations()),
            ),
            Expr::CaseList {
                scrut,
                nil_branch,
                head,
                tail,
                cons_branch,
            } => Expr::CaseList {
                scrut: Box::new(scrut.erase_annotations()),
                nil_branch: Box::new(nil_branch.erase_annotations()),
                head: head.clone(),
                tail: tail.clone(),
                cons_branch: Box::new(cons_branch.erase_annotations()),
            },
            Expr::Pair(a, b) => Expr::Pair(
                Box::new(a.erase_annotations()),
                Box::new(b.erase_annotations()),
            ),
            Expr::Fst(e) => Expr::Fst(Box::new(e.erase_annotations())),
            Expr::Snd(e) => Expr::Snd(Box::new(e.erase_annotations())),
            Expr::Let(x, a, b) => Expr::Let(
                x.clone(),
                Box::new(a.erase_annotations()),
                Box::new(b.erase_annotations()),
            ),
            Expr::Pack(e) => Expr::Pack(Box::new(e.erase_annotations())),
            Expr::Unpack(a, x, b) => Expr::Unpack(
                Box::new(a.erase_annotations()),
                x.clone(),
                Box::new(b.erase_annotations()),
            ),
            Expr::CLet(a, x, b) => Expr::CLet(
                Box::new(a.erase_annotations()),
                x.clone(),
                Box::new(b.erase_annotations()),
            ),
            Expr::CElim(e) => Expr::CElim(Box::new(e.erase_annotations())),
        }
    }

    /// Free program variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut acc = BTreeSet::new();
        self.collect_free_vars(&mut acc);
        acc
    }

    fn collect_free_vars(&self, acc: &mut BTreeSet<Var>) {
        match self {
            Expr::Var(v) => {
                acc.insert(v.clone());
            }
            Expr::Unit | Expr::Bool(_) | Expr::Int(_) | Expr::Nil => {}
            Expr::Prim(_, args) => {
                for a in args {
                    a.collect_free_vars(acc);
                }
            }
            Expr::If(a, b, c) => {
                a.collect_free_vars(acc);
                b.collect_free_vars(acc);
                c.collect_free_vars(acc);
            }
            Expr::Lam(x, e) => {
                let mut inner = BTreeSet::new();
                e.collect_free_vars(&mut inner);
                inner.remove(x);
                acc.extend(inner);
            }
            Expr::Fix(f, x, e) => {
                let mut inner = BTreeSet::new();
                e.collect_free_vars(&mut inner);
                inner.remove(f);
                inner.remove(x);
                acc.extend(inner);
            }
            Expr::App(a, b) | Expr::Cons(a, b) | Expr::Pair(a, b) => {
                a.collect_free_vars(acc);
                b.collect_free_vars(acc);
            }
            Expr::ILam(e)
            | Expr::IApp(e)
            | Expr::Fst(e)
            | Expr::Snd(e)
            | Expr::Pack(e)
            | Expr::CElim(e)
            | Expr::Anno(e, _, _) => e.collect_free_vars(acc),
            Expr::CaseList {
                scrut,
                nil_branch,
                head,
                tail,
                cons_branch,
            } => {
                scrut.collect_free_vars(acc);
                nil_branch.collect_free_vars(acc);
                let mut inner = BTreeSet::new();
                cons_branch.collect_free_vars(&mut inner);
                inner.remove(head);
                inner.remove(tail);
                acc.extend(inner);
            }
            Expr::Let(x, a, b) | Expr::Unpack(a, x, b) | Expr::CLet(a, x, b) => {
                a.collect_free_vars(acc);
                let mut inner = BTreeSet::new();
                b.collect_free_vars(&mut inner);
                inner.remove(x);
                acc.extend(inner);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Unit | Expr::Bool(_) | Expr::Int(_) | Expr::Nil => 1,
            Expr::Prim(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Lam(_, e) | Expr::Fix(_, _, e) => 1 + e.size(),
            Expr::App(a, b) | Expr::Cons(a, b) | Expr::Pair(a, b) => 1 + a.size() + b.size(),
            Expr::ILam(e)
            | Expr::IApp(e)
            | Expr::Fst(e)
            | Expr::Snd(e)
            | Expr::Pack(e)
            | Expr::CElim(e)
            | Expr::Anno(e, _, _) => 1 + e.size(),
            Expr::CaseList {
                scrut,
                nil_branch,
                cons_branch,
                ..
            } => 1 + scrut.size() + nil_branch.size() + cons_branch.size(),
            Expr::Let(_, a, b) | Expr::Unpack(a, _, b) | Expr::CLet(a, _, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// Number of type annotations — the measure behind the paper's
    /// "annotation effort" discussion (§6).
    pub fn annotation_count(&self) -> usize {
        match self {
            Expr::Anno(e, _, _) => 1 + e.annotation_count(),
            Expr::Var(_) | Expr::Unit | Expr::Bool(_) | Expr::Int(_) | Expr::Nil => 0,
            Expr::Prim(_, args) => args.iter().map(Expr::annotation_count).sum(),
            Expr::If(a, b, c) => a.annotation_count() + b.annotation_count() + c.annotation_count(),
            Expr::Lam(_, e) | Expr::Fix(_, _, e) => e.annotation_count(),
            Expr::App(a, b) | Expr::Cons(a, b) | Expr::Pair(a, b) => {
                a.annotation_count() + b.annotation_count()
            }
            Expr::ILam(e)
            | Expr::IApp(e)
            | Expr::Fst(e)
            | Expr::Snd(e)
            | Expr::Pack(e)
            | Expr::CElim(e) => e.annotation_count(),
            Expr::CaseList {
                scrut,
                nil_branch,
                cons_branch,
                ..
            } => {
                scrut.annotation_count()
                    + nil_branch.annotation_count()
                    + cons_branch.annotation_count()
            }
            Expr::Let(_, a, b) | Expr::Unpack(a, _, b) | Expr::CLet(a, _, b) => {
                a.annotation_count() + b.annotation_count()
            }
        }
    }

    /// A coarse structural fingerprint: two expressions with different heads
    /// are "structurally dissimilar at the top level", the trigger for
    /// heuristic 5's fallback to unary reasoning.
    pub fn head_constructor(&self) -> &'static str {
        match self {
            Expr::Var(_) => "var",
            Expr::Unit => "unit",
            Expr::Bool(_) => "bool",
            Expr::Int(_) => "int",
            Expr::Prim(_, _) => "prim",
            Expr::If(_, _, _) => "if",
            Expr::Lam(_, _) => "lam",
            Expr::Fix(_, _, _) => "fix",
            Expr::App(_, _) => "app",
            Expr::ILam(_) => "ilam",
            Expr::IApp(_) => "iapp",
            Expr::Nil => "nil",
            Expr::Cons(_, _) => "cons",
            Expr::CaseList { .. } => "case",
            Expr::Pair(_, _) => "pair",
            Expr::Fst(_) => "fst",
            Expr::Snd(_) => "snd",
            Expr::Let(_, _, _) => "let",
            Expr::Pack(_) => "pack",
            Expr::Unpack(_, _, _) => "unpack",
            Expr::CLet(_, _, _) => "clet",
            Expr::CElim(_) => "celim",
            Expr::Anno(_, _, _) => "anno",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // fix map(f). Λ. Λ. λl. case l of nil → nil | h :: tl → cons(f h, map f [] [] tl)
        Expr::fix(
            "map",
            "f",
            Expr::case_list(
                Expr::var("l"),
                Expr::Nil,
                "h",
                "tl",
                Expr::cons(
                    Expr::var("f").app(Expr::var("h")),
                    Expr::var("map")
                        .app(Expr::var("f"))
                        .iapp()
                        .iapp()
                        .app(Expr::var("tl")),
                ),
            ),
        )
    }

    #[test]
    fn free_vars_remove_binders() {
        let e = sample();
        let fv = e.free_vars();
        assert!(fv.contains(&Var::new("l")));
        assert!(!fv.contains(&Var::new("map")));
        assert!(!fv.contains(&Var::new("f")));
        assert!(!fv.contains(&Var::new("h")));
    }

    #[test]
    fn lambda_binders_shadow() {
        let e = Expr::lam("x", Expr::var("x").app(Expr::var("y")));
        let fv = e.free_vars();
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&Var::new("y")));
    }

    #[test]
    fn erase_annotations_is_idempotent_and_removes_all() {
        let e = Expr::var("x").anno(RelType::BoolR);
        let erased = e.erase_annotations();
        assert_eq!(erased, Expr::var("x"));
        assert_eq!(erased.annotation_count(), 0);
        assert_eq!(e.annotation_count(), 1);
        assert_eq!(erased.erase_annotations(), erased);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::var("x").size(), 1);
        assert_eq!(Expr::var("f").app(Expr::var("x")).size(), 3);
    }

    #[test]
    fn prim_op_metadata() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Not.arity(), 1);
        assert!(PrimOp::Eq.returns_bool());
        assert!(!PrimOp::Add.returns_bool());
        assert!(PrimOp::And.takes_bools());
        assert!(!PrimOp::Leq.takes_bools());
    }

    #[test]
    fn head_constructors_distinguish_shapes() {
        assert_eq!(Expr::Nil.head_constructor(), "nil");
        assert_ne!(
            Expr::var("x").head_constructor(),
            Expr::Unit.head_constructor()
        );
    }
}
