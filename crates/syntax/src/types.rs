//! Unary and relational types.
//!
//! The type grammar follows §3–§5 of the paper.  Unary types `A` classify a
//! single expression (DML-style refinements with `exec(k, t)` cost effects on
//! arrows); relational types `τ` classify a *pair* of expressions and carry
//! `diff(t)` relative-cost effects, relational list refinements
//! `list[n]^α τ`, the comonadic `□ τ` (syntactic equality of the two related
//! values) and the `U (A₁, A₂)` type that injects unary typing into
//! relational typing.

use std::collections::BTreeSet;
use std::fmt;

use rel_constraint::Constr;
use rel_index::{Idx, IdxVar, Sort};

/// Which type system of the paper a term should be checked in.
///
/// RelCost conservatively extends the others (the paper's §6 notes that the
/// implementation "can also be used for RelRef and RelRefU"); the engine uses
/// this level to reject constructs that a smaller system does not have and to
/// ignore costs below [`SystemLevel::RelCost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SystemLevel {
    /// §2: the relational simply-typed lambda calculus (booleans + arrows).
    RelStlc,
    /// §3: adds relational list refinements, `□`, index quantification and
    /// constraint types.
    RelRef,
    /// §4: adds the unary fallback (`U (A₁, A₂)` and the `switch` rule).
    RelRefU,
    /// §5: adds unary `exec(k, t)` and relational `diff(t)` cost effects.
    #[default]
    RelCost,
}

impl SystemLevel {
    /// Returns `true` if `self` includes all features of `other`.
    pub fn includes(self, other: SystemLevel) -> bool {
        self >= other
    }

    /// Returns `true` if cost effects are tracked at this level.
    pub fn tracks_cost(self) -> bool {
        self == SystemLevel::RelCost
    }
}

impl fmt::Display for SystemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemLevel::RelStlc => write!(f, "relSTLC"),
            SystemLevel::RelRef => write!(f, "RelRef"),
            SystemLevel::RelRefU => write!(f, "RelRefU"),
            SystemLevel::RelCost => write!(f, "RelCost"),
        }
    }
}

/// The `exec(k, t)` effect of a unary arrow: `k` is a lower bound and `t` an
/// upper bound on the evaluation cost of the function body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CostBounds {
    /// Lower bound `k`.
    pub lo: Idx,
    /// Upper bound `t`.
    pub hi: Idx,
}

impl CostBounds {
    /// Creates an `exec(lo, hi)` annotation.
    pub fn new(lo: Idx, hi: Idx) -> CostBounds {
        CostBounds { lo, hi }
    }

    /// The uninformative bound `exec(0, ∞)` used when costs are not tracked.
    pub fn unbounded() -> CostBounds {
        CostBounds {
            lo: Idx::zero(),
            hi: Idx::infty(),
        }
    }

    /// The exact bound `exec(c, c)`.
    pub fn exactly(c: Idx) -> CostBounds {
        CostBounds {
            lo: c.clone(),
            hi: c,
        }
    }

    /// Substitutes an index term for an index variable in both bounds.
    pub fn subst(&self, var: &IdxVar, replacement: &Idx) -> CostBounds {
        CostBounds {
            lo: self.lo.subst(var, replacement),
            hi: self.hi.subst(var, replacement),
        }
    }

    /// Free index variables of both bounds.
    pub fn free_idx_vars(&self) -> BTreeSet<IdxVar> {
        let mut s = self.lo.free_vars();
        s.extend(self.hi.free_vars());
        s
    }
}

impl fmt::Display for CostBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exec({}, {})", self.lo, self.hi)
    }
}

/// A unary (single-execution) type `A`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UnaryType {
    /// The unit type.
    Unit,
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// An opaque type variable (used to state polymorphic example types such
    /// as `map`'s; type variables are not quantified in the formal systems).
    TVar(String),
    /// `A₁ →^exec(k,t) A₂`.
    Arrow(Box<UnaryType>, CostBounds, Box<UnaryType>),
    /// `list[n] A` — lists of length exactly `n`.
    List(Idx, Box<UnaryType>),
    /// Products `A₁ × A₂`.
    Prod(Box<UnaryType>, Box<UnaryType>),
    /// `∀ i :: S. A`.
    Forall(IdxVar, Sort, Box<UnaryType>),
    /// `∃ i :: S. A`.
    Exists(IdxVar, Sort, Box<UnaryType>),
    /// `C & A` — the constraint holds and the value has type `A`.
    CAnd(Constr, Box<UnaryType>),
    /// `C ⊃ A` — if the constraint holds then the value has type `A`.
    CImpl(Constr, Box<UnaryType>),
}

impl UnaryType {
    /// `A₁ →^exec(k,t) A₂`.
    pub fn arrow(a: UnaryType, cost: CostBounds, b: UnaryType) -> UnaryType {
        UnaryType::Arrow(Box::new(a), cost, Box::new(b))
    }

    /// `list[n] A`.
    pub fn list(n: Idx, a: UnaryType) -> UnaryType {
        UnaryType::List(n, Box::new(a))
    }

    /// `A₁ × A₂`.
    pub fn prod(a: UnaryType, b: UnaryType) -> UnaryType {
        UnaryType::Prod(Box::new(a), Box::new(b))
    }

    /// `∀ i :: S. A`.
    pub fn forall(i: impl Into<IdxVar>, s: Sort, a: UnaryType) -> UnaryType {
        UnaryType::Forall(i.into(), s, Box::new(a))
    }

    /// `∃ i :: S. A`.
    pub fn exists(i: impl Into<IdxVar>, s: Sort, a: UnaryType) -> UnaryType {
        UnaryType::Exists(i.into(), s, Box::new(a))
    }

    /// Capture-avoiding substitution of an index term for an index variable.
    pub fn subst_idx(&self, var: &IdxVar, replacement: &Idx) -> UnaryType {
        match self {
            UnaryType::Unit | UnaryType::Bool | UnaryType::Int | UnaryType::TVar(_) => self.clone(),
            UnaryType::Arrow(a, c, b) => UnaryType::Arrow(
                Box::new(a.subst_idx(var, replacement)),
                c.subst(var, replacement),
                Box::new(b.subst_idx(var, replacement)),
            ),
            UnaryType::List(n, a) => UnaryType::List(
                n.subst(var, replacement),
                Box::new(a.subst_idx(var, replacement)),
            ),
            UnaryType::Prod(a, b) => UnaryType::Prod(
                Box::new(a.subst_idx(var, replacement)),
                Box::new(b.subst_idx(var, replacement)),
            ),
            UnaryType::Forall(i, s, a) => {
                if i == var {
                    self.clone()
                } else {
                    UnaryType::Forall(i.clone(), *s, Box::new(a.subst_idx(var, replacement)))
                }
            }
            UnaryType::Exists(i, s, a) => {
                if i == var {
                    self.clone()
                } else {
                    UnaryType::Exists(i.clone(), *s, Box::new(a.subst_idx(var, replacement)))
                }
            }
            UnaryType::CAnd(c, a) => UnaryType::CAnd(
                c.subst(var, replacement),
                Box::new(a.subst_idx(var, replacement)),
            ),
            UnaryType::CImpl(c, a) => UnaryType::CImpl(
                c.subst(var, replacement),
                Box::new(a.subst_idx(var, replacement)),
            ),
        }
    }

    /// Free index variables of the type.
    pub fn free_idx_vars(&self) -> BTreeSet<IdxVar> {
        match self {
            UnaryType::Unit | UnaryType::Bool | UnaryType::Int | UnaryType::TVar(_) => {
                BTreeSet::new()
            }
            UnaryType::Arrow(a, c, b) => {
                let mut s = a.free_idx_vars();
                s.extend(c.free_idx_vars());
                s.extend(b.free_idx_vars());
                s
            }
            UnaryType::List(n, a) => {
                let mut s = n.free_vars();
                s.extend(a.free_idx_vars());
                s
            }
            UnaryType::Prod(a, b) => {
                let mut s = a.free_idx_vars();
                s.extend(b.free_idx_vars());
                s
            }
            UnaryType::Forall(i, _, a) | UnaryType::Exists(i, _, a) => {
                let mut s = a.free_idx_vars();
                s.remove(i);
                s
            }
            UnaryType::CAnd(c, a) | UnaryType::CImpl(c, a) => {
                let mut s = c.free_vars();
                s.extend(a.free_idx_vars());
                s
            }
        }
    }

    /// Structural size (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            UnaryType::Unit | UnaryType::Bool | UnaryType::Int | UnaryType::TVar(_) => 1,
            UnaryType::Arrow(a, _, b) | UnaryType::Prod(a, b) => 1 + a.size() + b.size(),
            UnaryType::List(_, a)
            | UnaryType::Forall(_, _, a)
            | UnaryType::Exists(_, _, a)
            | UnaryType::CAnd(_, a)
            | UnaryType::CImpl(_, a) => 1 + a.size(),
        }
    }
}

/// A relational type `τ`, classifying a pair of expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelType {
    /// `unitᵣ`: both runs produce the unit value.
    UnitR,
    /// `boolᵣ`: both runs produce the *same* boolean (the diagonal relation).
    BoolR,
    /// `intᵣ`: both runs produce the same integer.
    IntR,
    /// An opaque relational type variable.
    TVar(String),
    /// `τ₁ →^diff(t) τ₂`: related functions whose bodies' relative cost is at
    /// most `t`.
    Arrow(Box<RelType>, Idx, Box<RelType>),
    /// `list[n]^α τ`: two lists of length `n` differing pointwise in at most
    /// `α` positions.
    List {
        /// Common length `n`.
        len: Idx,
        /// Maximum number of differing positions `α`.
        diff: Idx,
        /// Element relation.
        elem: Box<RelType>,
    },
    /// Products.
    Prod(Box<RelType>, Box<RelType>),
    /// `□ τ`: the two related values are equal (diagonal of `τ`).
    Boxed(Box<RelType>),
    /// `U (A₁, A₂)`: any two expressions whose unary types are `A₁` and `A₂`.
    U(Box<UnaryType>, Box<UnaryType>),
    /// `∀ i :: S. τ`.
    Forall(IdxVar, Sort, Box<RelType>),
    /// `∃ i :: S. τ`.
    Exists(IdxVar, Sort, Box<RelType>),
    /// `C & τ`.
    CAnd(Constr, Box<RelType>),
    /// `C ⊃ τ`.
    CImpl(Constr, Box<RelType>),
}

impl RelType {
    /// `τ₁ →^diff(t) τ₂`.
    pub fn arrow(a: RelType, diff_cost: Idx, b: RelType) -> RelType {
        RelType::Arrow(Box::new(a), diff_cost, Box::new(b))
    }

    /// An arrow with zero relative cost (the only arrow available below
    /// RelCost).
    pub fn arrow0(a: RelType, b: RelType) -> RelType {
        RelType::arrow(a, Idx::zero(), b)
    }

    /// `list[n]^α τ`.
    pub fn list(len: Idx, diff: Idx, elem: RelType) -> RelType {
        RelType::List {
            len,
            diff,
            elem: Box::new(elem),
        }
    }

    /// `□ τ`.
    pub fn boxed(t: RelType) -> RelType {
        RelType::Boxed(Box::new(t))
    }

    /// `τ₁ × τ₂`.
    pub fn prod(a: RelType, b: RelType) -> RelType {
        RelType::Prod(Box::new(a), Box::new(b))
    }

    /// `U (A₁, A₂)`.
    pub fn u(a: UnaryType, b: UnaryType) -> RelType {
        RelType::U(Box::new(a), Box::new(b))
    }

    /// `U (A, A)` — the common case of relating two runs at the same unary type.
    pub fn u_same(a: UnaryType) -> RelType {
        RelType::u(a.clone(), a)
    }

    /// The relSTLC type `boolᵤ` of arbitrary (unrelated) boolean pairs,
    /// definable as `U (bool, bool)`.
    pub fn bool_u() -> RelType {
        RelType::u_same(UnaryType::Bool)
    }

    /// `∀ i :: S. τ`.
    pub fn forall(i: impl Into<IdxVar>, s: Sort, t: RelType) -> RelType {
        RelType::Forall(i.into(), s, Box::new(t))
    }

    /// `∃ i :: S. τ`.
    pub fn exists(i: impl Into<IdxVar>, s: Sort, t: RelType) -> RelType {
        RelType::Exists(i.into(), s, Box::new(t))
    }

    /// `C & τ`.
    pub fn cand(c: Constr, t: RelType) -> RelType {
        RelType::CAnd(c, Box::new(t))
    }

    /// `C ⊃ τ`.
    pub fn cimpl(c: Constr, t: RelType) -> RelType {
        RelType::CImpl(c, Box::new(t))
    }

    /// Capture-avoiding substitution of an index term for an index variable.
    pub fn subst_idx(&self, var: &IdxVar, replacement: &Idx) -> RelType {
        match self {
            RelType::UnitR | RelType::BoolR | RelType::IntR | RelType::TVar(_) => self.clone(),
            RelType::Arrow(a, t, b) => RelType::Arrow(
                Box::new(a.subst_idx(var, replacement)),
                t.subst(var, replacement),
                Box::new(b.subst_idx(var, replacement)),
            ),
            RelType::List { len, diff, elem } => RelType::List {
                len: len.subst(var, replacement),
                diff: diff.subst(var, replacement),
                elem: Box::new(elem.subst_idx(var, replacement)),
            },
            RelType::Prod(a, b) => RelType::Prod(
                Box::new(a.subst_idx(var, replacement)),
                Box::new(b.subst_idx(var, replacement)),
            ),
            RelType::Boxed(t) => RelType::Boxed(Box::new(t.subst_idx(var, replacement))),
            RelType::U(a, b) => RelType::U(
                Box::new(a.subst_idx(var, replacement)),
                Box::new(b.subst_idx(var, replacement)),
            ),
            RelType::Forall(i, s, t) => {
                if i == var {
                    self.clone()
                } else {
                    RelType::Forall(i.clone(), *s, Box::new(t.subst_idx(var, replacement)))
                }
            }
            RelType::Exists(i, s, t) => {
                if i == var {
                    self.clone()
                } else {
                    RelType::Exists(i.clone(), *s, Box::new(t.subst_idx(var, replacement)))
                }
            }
            RelType::CAnd(c, t) => RelType::CAnd(
                c.subst(var, replacement),
                Box::new(t.subst_idx(var, replacement)),
            ),
            RelType::CImpl(c, t) => RelType::CImpl(
                c.subst(var, replacement),
                Box::new(t.subst_idx(var, replacement)),
            ),
        }
    }

    /// Free index variables of the type.
    pub fn free_idx_vars(&self) -> BTreeSet<IdxVar> {
        match self {
            RelType::UnitR | RelType::BoolR | RelType::IntR | RelType::TVar(_) => BTreeSet::new(),
            RelType::Arrow(a, t, b) => {
                let mut s = a.free_idx_vars();
                s.extend(t.free_vars());
                s.extend(b.free_idx_vars());
                s
            }
            RelType::List { len, diff, elem } => {
                let mut s = len.free_vars();
                s.extend(diff.free_vars());
                s.extend(elem.free_idx_vars());
                s
            }
            RelType::Prod(a, b) => {
                let mut s = a.free_idx_vars();
                s.extend(b.free_idx_vars());
                s
            }
            RelType::Boxed(t) => t.free_idx_vars(),
            RelType::U(a, b) => {
                let mut s = a.free_idx_vars();
                s.extend(b.free_idx_vars());
                s
            }
            RelType::Forall(i, _, t) | RelType::Exists(i, _, t) => {
                let mut s = t.free_idx_vars();
                s.remove(i);
                s
            }
            RelType::CAnd(c, t) | RelType::CImpl(c, t) => {
                let mut s = c.free_vars();
                s.extend(t.free_idx_vars());
                s
            }
        }
    }

    /// Structural size (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            RelType::UnitR | RelType::BoolR | RelType::IntR | RelType::TVar(_) => 1,
            RelType::Arrow(a, _, b) | RelType::Prod(a, b) => 1 + a.size() + b.size(),
            RelType::List { elem, .. } => 1 + elem.size(),
            RelType::Boxed(t)
            | RelType::Forall(_, _, t)
            | RelType::Exists(_, _, t)
            | RelType::CAnd(_, t)
            | RelType::CImpl(_, t) => 1 + t.size(),
            RelType::U(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// The left (`i = 1`) or right (`i = 2`) unary projection `|τ|ᵢ` of the
    /// paper (§4): forgets relational refinements so the component can be
    /// typed by the unary system.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not 1 or 2.
    pub fn project(&self, side: u8) -> UnaryType {
        assert!(side == 1 || side == 2, "projection side must be 1 or 2");
        match self {
            RelType::UnitR => UnaryType::Unit,
            RelType::BoolR => UnaryType::Bool,
            RelType::IntR => UnaryType::Int,
            RelType::TVar(s) => UnaryType::TVar(s.clone()),
            RelType::Arrow(a, _, b) => UnaryType::Arrow(
                Box::new(a.project(side)),
                CostBounds::unbounded(),
                Box::new(b.project(side)),
            ),
            RelType::List { len, elem, .. } => {
                UnaryType::List(len.clone(), Box::new(elem.project(side)))
            }
            RelType::Prod(a, b) => {
                UnaryType::Prod(Box::new(a.project(side)), Box::new(b.project(side)))
            }
            RelType::Boxed(t) => t.project(side),
            RelType::U(a, b) => {
                if side == 1 {
                    (**a).clone()
                } else {
                    (**b).clone()
                }
            }
            RelType::Forall(i, s, t) => UnaryType::Forall(i.clone(), *s, Box::new(t.project(side))),
            RelType::Exists(i, s, t) => UnaryType::Exists(i.clone(), *s, Box::new(t.project(side))),
            RelType::CAnd(c, t) => UnaryType::CAnd(c.clone(), Box::new(t.project(side))),
            RelType::CImpl(c, t) => UnaryType::CImpl(c.clone(), Box::new(t.project(side))),
        }
    }

    /// Strips any outer `□` constructors.
    pub fn strip_boxes(&self) -> &RelType {
        match self {
            RelType::Boxed(t) => t.strip_boxes(),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_list_type() -> RelType {
        RelType::list(Idx::var("n"), Idx::var("a"), RelType::IntR)
    }

    #[test]
    fn system_levels_are_ordered() {
        assert!(SystemLevel::RelCost.includes(SystemLevel::RelStlc));
        assert!(SystemLevel::RelRefU.includes(SystemLevel::RelRef));
        assert!(!SystemLevel::RelRef.includes(SystemLevel::RelRefU));
        assert!(SystemLevel::RelCost.tracks_cost());
        assert!(!SystemLevel::RelRefU.tracks_cost());
    }

    #[test]
    fn subst_idx_replaces_refinements() {
        let t = sample_list_type();
        let t2 = t.subst_idx(&IdxVar::new("n"), &Idx::nat(5));
        match t2 {
            RelType::List { len, diff, .. } => {
                assert_eq!(len, Idx::nat(5));
                assert_eq!(diff, Idx::var("a"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_idx_respects_binders() {
        let t = RelType::forall("n", Sort::Nat, sample_list_type());
        let t2 = t.subst_idx(&IdxVar::new("n"), &Idx::nat(5));
        assert_eq!(t, t2);
        // But a different variable is substituted under the binder.
        let t3 = t.subst_idx(&IdxVar::new("a"), &Idx::nat(2));
        assert_ne!(t, t3);
    }

    #[test]
    fn free_idx_vars_of_quantified_types() {
        let t = RelType::forall("n", Sort::Nat, sample_list_type());
        let fv = t.free_idx_vars();
        assert!(fv.contains(&IdxVar::new("a")));
        assert!(!fv.contains(&IdxVar::new("n")));
    }

    #[test]
    fn projection_forgets_relational_refinements() {
        // |list[n]^α intr|₁ = list[n] int
        let t = sample_list_type();
        assert_eq!(t.project(1), UnaryType::list(Idx::var("n"), UnaryType::Int));
        // |U (bool, int)|₂ = int
        let t = RelType::u(UnaryType::Bool, UnaryType::Int);
        assert_eq!(t.project(1), UnaryType::Bool);
        assert_eq!(t.project(2), UnaryType::Int);
        // Boxes are transparent to projection.
        let t = RelType::boxed(RelType::BoolR);
        assert_eq!(t.project(2), UnaryType::Bool);
    }

    #[test]
    fn projection_of_arrows_forgets_costs() {
        let t = RelType::arrow(RelType::IntR, Idx::var("t"), RelType::IntR);
        match t.project(1) {
            UnaryType::Arrow(_, cost, _) => assert_eq!(cost, CostBounds::unbounded()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strip_boxes_removes_all_outer_boxes() {
        let t = RelType::boxed(RelType::boxed(RelType::BoolR));
        assert_eq!(t.strip_boxes(), &RelType::BoolR);
    }

    #[test]
    fn bool_u_is_unrelated_booleans() {
        assert_eq!(
            RelType::bool_u(),
            RelType::u(UnaryType::Bool, UnaryType::Bool)
        );
    }

    #[test]
    fn sizes_count_constructors() {
        assert_eq!(RelType::BoolR.size(), 1);
        assert_eq!(sample_list_type().size(), 2);
        assert_eq!(RelType::arrow0(RelType::BoolR, RelType::BoolR).size(), 3);
    }
}
