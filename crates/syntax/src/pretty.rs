//! Pretty-printing of types and expressions back into the concrete syntax.
//!
//! The printer produces text that the parser accepts and that parses back to
//! the same AST (checked by the round-trip property tests below); it is used
//! by error messages, the CLI and the benchmark reports.

use rel_constraint::Constr;

use crate::expr::{Expr, PrimOp};
use crate::types::{RelType, UnaryType};

/// Renders a relational type.
pub fn rel_type(t: &RelType) -> String {
    rel_prec(t, 0)
}

// Precedence levels: 0 = top (quantifiers/constraints), 1 = arrow, 2 = product, 3 = atom.
fn rel_prec(t: &RelType, prec: u8) -> String {
    let s = match t {
        RelType::UnitR => "unitr".to_string(),
        RelType::BoolR => "boolr".to_string(),
        RelType::IntR => "intr".to_string(),
        RelType::TVar(v) => format!("tv {v}"),
        RelType::Boxed(inner) => format!("box {}", rel_prec(inner, 3)),
        RelType::List { len, diff, elem } => {
            format!("list[{len}; {diff}] {}", rel_prec(elem, 3))
        }
        RelType::U(a, b) => format!("U({}, {})", unary_type(a), unary_type(b)),
        RelType::Prod(a, b) => {
            let s = format!("{} * {}", rel_prec(a, 2), rel_prec(b, 3));
            return wrap(s, prec > 2);
        }
        RelType::Arrow(a, cost, b) => {
            let cost_str = if cost.is_zero() {
                String::new()
            } else {
                format!("[{cost}]")
            };
            let s = format!("{} ->{} {}", rel_prec(a, 2), cost_str, rel_prec(b, 1));
            return wrap(s, prec > 1);
        }
        RelType::Forall(i, s, body) => {
            let s = format!("forall {i} :: {s}. {}", rel_prec(body, 0));
            return wrap(s, prec > 0);
        }
        RelType::Exists(i, s, body) => {
            let s = format!("exists {i} :: {s}. {}", rel_prec(body, 0));
            return wrap(s, prec > 0);
        }
        RelType::CAnd(c, body) => {
            let s = format!("{{{}}} & {}", constr(c), rel_prec(body, 0));
            return wrap(s, prec > 0);
        }
        RelType::CImpl(c, body) => {
            let s = format!("{{{}}} => {}", constr(c), rel_prec(body, 0));
            return wrap(s, prec > 0);
        }
    };
    s
}

/// Renders a unary type.
pub fn unary_type(t: &UnaryType) -> String {
    unary_prec(t, 0)
}

fn unary_prec(t: &UnaryType, prec: u8) -> String {
    match t {
        UnaryType::Unit => "unit".to_string(),
        UnaryType::Bool => "bool".to_string(),
        UnaryType::Int => "int".to_string(),
        UnaryType::TVar(v) => format!("tv {v}"),
        UnaryType::List(n, elem) => format!("list[{n}] {}", unary_prec(elem, 3)),
        UnaryType::Prod(a, b) => {
            let s = format!("{} * {}", unary_prec(a, 2), unary_prec(b, 3));
            wrap(s, prec > 2)
        }
        UnaryType::Arrow(a, cost, b) => {
            let s = format!(
                "{} ->[{}, {}] {}",
                unary_prec(a, 2),
                cost.lo,
                cost.hi,
                unary_prec(b, 1)
            );
            wrap(s, prec > 1)
        }
        UnaryType::Forall(i, s, body) => {
            let s = format!("forall {i} :: {s}. {}", unary_prec(body, 0));
            wrap(s, prec > 0)
        }
        UnaryType::Exists(i, s, body) => {
            let s = format!("exists {i} :: {s}. {}", unary_prec(body, 0));
            wrap(s, prec > 0)
        }
        UnaryType::CAnd(c, body) => {
            let s = format!("{{{}}} & {}", constr(c), unary_prec(body, 0));
            wrap(s, prec > 0)
        }
        UnaryType::CImpl(c, body) => {
            let s = format!("{{{}}} => {}", constr(c), unary_prec(body, 0));
            wrap(s, prec > 0)
        }
    }
}

/// Renders a constraint in the concrete syntax accepted by the parser.
pub fn constr(c: &Constr) -> String {
    match c {
        Constr::Top => "tt".to_string(),
        Constr::Bot => "ff".to_string(),
        Constr::Eq(a, b) => format!("{a} = {b}"),
        Constr::Leq(a, b) => format!("{a} <= {b}"),
        Constr::Lt(a, b) => format!("{a} < {b}"),
        Constr::And(cs) => {
            let parts: Vec<String> = cs.iter().map(constr).collect();
            format!("({})", parts.join(" and "))
        }
        Constr::Or(cs) => {
            let parts: Vec<String> = cs.iter().map(constr).collect();
            format!("({})", parts.join(" or "))
        }
        Constr::Not(c) => format!("not ({})", constr(c)),
        Constr::Implies(a, b) => format!("(not ({}) or ({}))", constr(a), constr(b)),
        Constr::Forall(q, c) => format!("(forall {} :: {}. {})", q.var, q.sort, constr(c)),
        Constr::Exists(q, c) => format!("(exists {} :: {}. {})", q.var, q.sort, constr(c)),
    }
}

/// Renders an expression.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

// Precedence: 0 = top (binders), 1 = || , 2 = &&, 3 = comparisons, 4 = additive,
// 5 = multiplicative, 6 = application, 7 = atom.
fn expr_prec(e: &Expr, prec: u8) -> String {
    match e {
        Expr::Var(v) => v.name().to_string(),
        Expr::Unit => "()".to_string(),
        Expr::Bool(true) => "true".to_string(),
        Expr::Bool(false) => "false".to_string(),
        Expr::Int(n) => {
            if *n < 0 {
                format!("(0 - {})", -n)
            } else {
                n.to_string()
            }
        }
        Expr::Nil => "nil".to_string(),
        Expr::Cons(a, b) => format!("cons({}, {})", expr_prec(a, 0), expr_prec(b, 0)),
        Expr::Pair(a, b) => format!("({}, {})", expr_prec(a, 0), expr_prec(b, 0)),
        Expr::Anno(e, t, None) => format!("({} : {})", expr_prec(e, 0), rel_type(t)),
        Expr::Anno(e, t, Some(c)) => {
            format!("({} : {} @ {})", expr_prec(e, 0), rel_type(t), c)
        }
        Expr::Fst(e) => wrap(format!("fst {}", expr_prec(e, 7)), prec > 6),
        Expr::Snd(e) => wrap(format!("snd {}", expr_prec(e, 7)), prec > 6),
        Expr::CElim(e) => wrap(format!("celim {}", expr_prec(e, 7)), prec > 6),
        Expr::Prim(PrimOp::Not, args) => wrap(format!("not {}", expr_prec(&args[0], 7)), prec > 6),
        Expr::Prim(op, args) => {
            let level = match op {
                PrimOp::Or => 1,
                PrimOp::And => 2,
                PrimOp::Eq | PrimOp::Leq | PrimOp::Lt => 3,
                PrimOp::Add | PrimOp::Sub => 4,
                PrimOp::Mul | PrimOp::Div | PrimOp::Mod => 5,
                PrimOp::Not => unreachable!("handled above"),
            };
            let s = format!(
                "{} {} {}",
                expr_prec(&args[0], level),
                op.symbol(),
                expr_prec(&args[1], level + 1)
            );
            wrap(s, prec > level)
        }
        Expr::App(f, a) => {
            let s = format!("{} {}", expr_prec(f, 6), expr_prec(a, 7));
            wrap(s, prec > 6)
        }
        Expr::IApp(f) => {
            let s = format!("{} []", expr_prec(f, 6));
            wrap(s, prec > 6)
        }
        Expr::Lam(x, body) => wrap(format!("lam {x}. {}", expr_prec(body, 0)), prec > 0),
        Expr::ILam(body) => wrap(format!("Lam. {}", expr_prec(body, 0)), prec > 0),
        Expr::Fix(f, x, body) => wrap(format!("fix {f}({x}). {}", expr_prec(body, 0)), prec > 0),
        Expr::Let(x, a, b) => wrap(
            format!("let {x} = {} in {}", expr_prec(a, 0), expr_prec(b, 0)),
            prec > 0,
        ),
        Expr::If(c, t, f) => wrap(
            format!(
                "if {} then {} else {}",
                expr_prec(c, 0),
                expr_prec(t, 0),
                expr_prec(f, 0)
            ),
            prec > 0,
        ),
        Expr::CaseList {
            scrut,
            nil_branch,
            head,
            tail,
            cons_branch,
        } => wrap(
            format!(
                "case {} of nil -> {} | {head} :: {tail} -> {}",
                expr_prec(scrut, 0),
                expr_prec(nil_branch, 0),
                expr_prec(cons_branch, 0)
            ),
            prec > 0,
        ),
        Expr::Pack(e) => wrap(format!("pack {}", expr_prec(e, 7)), prec > 6),
        Expr::Unpack(a, x, b) => wrap(
            format!("unpack {} as {x} in {}", expr_prec(a, 0), expr_prec(b, 0)),
            prec > 0,
        ),
        Expr::CLet(a, x, b) => wrap(
            format!("clet {} as {x} in {}", expr_prec(a, 0), expr_prec(b, 0)),
            prec > 0,
        ),
    }
}

fn wrap(s: String, needed: bool) -> String {
    if needed {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_rel_type};
    use crate::types::CostBounds;
    use rel_index::{Idx, Sort};

    #[test]
    fn prints_simple_types() {
        let t = RelType::list(Idx::var("n"), Idx::var("a"), RelType::IntR);
        assert_eq!(rel_type(&t), "list[n; a] intr");
        let t = RelType::arrow(RelType::BoolR, Idx::var("t"), RelType::BoolR);
        assert_eq!(rel_type(&t), "boolr ->[t] boolr");
        let t = RelType::arrow0(RelType::BoolR, RelType::BoolR);
        assert_eq!(rel_type(&t), "boolr -> boolr");
        let t = RelType::u(UnaryType::Bool, UnaryType::Int);
        assert_eq!(rel_type(&t), "U(bool, int)");
    }

    #[test]
    fn prints_expressions() {
        let e = Expr::var("f").app(Expr::var("x")).iapp();
        assert_eq!(expr(&e), "f x []");
        let e = Expr::prim2(
            PrimOp::Add,
            Expr::Int(1),
            Expr::prim2(PrimOp::Mul, Expr::Int(2), Expr::Int(3)),
        );
        assert_eq!(expr(&e), "1 + 2 * 3");
    }

    // A tiny deterministic generator standing in for proptest strategies: a
    // seeded stream drives recursive construction over the same constructor
    // alternatives the original strategies covered.
    struct Gen(rand::rngs::StdRng);

    impl Gen {
        fn new(seed: u64) -> Gen {
            use rand::SeedableRng;
            Gen(rand::rngs::StdRng::seed_from_u64(seed))
        }

        fn pick(&mut self, n: u64) -> u64 {
            use rand::Rng;
            self.0.gen_range(0..n)
        }
    }

    fn arb_rel_type(g: &mut Gen, depth: usize) -> RelType {
        if depth == 0 || g.pick(3) == 0 {
            return match g.pick(6) {
                0 => RelType::BoolR,
                1 => RelType::IntR,
                2 => RelType::UnitR,
                3 => RelType::TVar("a".into()),
                4 => RelType::u(UnaryType::Int, UnaryType::Bool),
                _ => RelType::u_same(UnaryType::list(Idx::var("n"), UnaryType::Int)),
            };
        }
        let d = depth - 1;
        match g.pick(6) {
            0 => RelType::arrow(arb_rel_type(g, d), Idx::var("t"), arb_rel_type(g, d)),
            1 => RelType::prod(arb_rel_type(g, d), arb_rel_type(g, d)),
            2 => RelType::boxed(arb_rel_type(g, d)),
            3 => RelType::list(Idx::var("n"), Idx::var("al"), arb_rel_type(g, d)),
            4 => RelType::forall("i", Sort::Nat, arb_rel_type(g, d)),
            _ => RelType::cand(
                rel_constraint::Constr::leq(Idx::var("b"), Idx::var("a")),
                arb_rel_type(g, d),
            ),
        }
    }

    fn arb_expr(g: &mut Gen, depth: usize) -> Expr {
        if depth == 0 || g.pick(3) == 0 {
            return match g.pick(6) {
                0 => Expr::var("x"),
                1 => Expr::var("f"),
                2 => Expr::Unit,
                3 => Expr::Bool(true),
                4 => Expr::Int(7),
                _ => Expr::Nil,
            };
        }
        let d = depth - 1;
        match g.pick(10) {
            0 => arb_expr(g, d).app(arb_expr(g, d)),
            1 => Expr::cons(arb_expr(g, d), arb_expr(g, d)),
            2 => Expr::pair(arb_expr(g, d), arb_expr(g, d)),
            3 => Expr::prim2(PrimOp::Add, arb_expr(g, d), arb_expr(g, d)),
            4 => Expr::if_then_else(arb_expr(g, d), arb_expr(g, d), arb_expr(g, d)),
            5 => Expr::lam("y", arb_expr(g, d)),
            6 => arb_expr(g, d).iapp(),
            7 => Expr::Fst(Box::new(arb_expr(g, d))),
            8 => Expr::let_in("z", arb_expr(g, d), arb_expr(g, d)),
            _ => Expr::case_list(arb_expr(g, d), arb_expr(g, d), "h", "tl", arb_expr(g, d)),
        }
    }

    #[test]
    fn rel_types_round_trip() {
        let mut g = Gen::new(0xC0FFEE);
        for _ in 0..256 {
            let t = arb_rel_type(&mut g, 3);
            let printed = rel_type(&t);
            let reparsed = parse_rel_type(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
            assert_eq!(reparsed, t, "printed as `{printed}`");
        }
    }

    #[test]
    fn exprs_round_trip() {
        let mut g = Gen::new(0xBEEF);
        for _ in 0..256 {
            let e = arb_expr(&mut g, 3);
            let printed = expr(&e);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
            assert_eq!(reparsed, e, "printed as `{printed}`");
        }
    }

    #[test]
    fn unary_arrow_round_trips_with_exec_costs() {
        let t = RelType::u_same(UnaryType::arrow(
            UnaryType::Int,
            CostBounds::new(Idx::var("k"), Idx::var("t")),
            UnaryType::Int,
        ));
        let printed = rel_type(&t);
        assert_eq!(parse_rel_type(&printed).unwrap(), t);
    }
}
