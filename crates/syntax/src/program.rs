//! Top-level programs.
//!
//! A program is a sequence of definitions.  Each definition annotates its
//! body (or pair of bodies) with a relational type, the only mandatory
//! annotation in the bidirectional discipline.  Definitions are checked in
//! order; earlier definitions are available (at their annotated type) in the
//! typing context of later ones — this is how the `msort` example uses
//! `bsplit` and `merge`.

use std::fmt;

use rel_constraint::Constr;
use rel_index::Idx;

use crate::expr::{Expr, Var};
use crate::types::RelType;

/// A top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// The definition's name.
    pub name: Var,
    /// The annotated relational type.
    pub ty: RelType,
    /// The relative-cost bound to check the definition against (defaults to
    /// `0`: a top-level value relates to itself with no cost difference; the
    /// interesting costs live on the arrows inside `ty`).
    pub cost: Idx,
    /// The left program.
    pub left: Expr,
    /// The right program; `None` means the definition relates `left` to
    /// itself (the common case).  `Some` is used by genuinely 2-program
    /// examples such as `find` (head-to-tail vs tail-to-head scan).
    pub right: Option<Expr>,
    /// Extra hypotheses assumed while checking this definition (the paper
    /// supplies one such axiom — a divide-and-conquer recurrence — to the
    /// constraint solver for `msort`-style examples).
    pub axioms: Vec<Constr>,
}

impl Def {
    /// Creates a definition relating `body` to itself at type `ty`.
    pub fn new(name: impl Into<Var>, ty: RelType, body: Expr) -> Def {
        Def {
            name: name.into(),
            ty,
            cost: Idx::zero(),
            left: body,
            right: None,
            axioms: Vec::new(),
        }
    }

    /// Creates a definition relating two different programs.
    pub fn relating(name: impl Into<Var>, ty: RelType, left: Expr, right: Expr) -> Def {
        Def {
            name: name.into(),
            ty,
            cost: Idx::zero(),
            left,
            right: Some(right),
            axioms: Vec::new(),
        }
    }

    /// Sets the relative-cost bound for the definition itself.
    pub fn with_cost(mut self, cost: Idx) -> Def {
        self.cost = cost;
        self
    }

    /// Adds a solver axiom scoped to this definition.
    pub fn with_axiom(mut self, axiom: Constr) -> Def {
        self.axioms.push(axiom);
        self
    }

    /// The right-hand program (the left one when the definition is reflexive).
    pub fn right_or_left(&self) -> &Expr {
        self.right.as_ref().unwrap_or(&self.left)
    }

    /// Number of explicit type annotations in the bodies, plus one for the
    /// mandatory top-level type — the paper's "annotation effort" metric.
    pub fn annotation_count(&self) -> usize {
        1 + self.left.annotation_count() + self.right.as_ref().map_or(0, Expr::annotation_count)
    }
}

impl fmt::Display for Def {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "def {} : {}",
            self.name,
            crate::pretty::rel_type(&self.ty)
        )
    }
}

/// A program: an ordered sequence of definitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The definitions, in dependency order.
    pub defs: Vec<Def>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Appends a definition.
    pub fn push(&mut self, def: Def) -> &mut Self {
        self.defs.push(def);
        self
    }

    /// Looks up a definition by name.
    pub fn def(&self, name: &str) -> Option<&Def> {
        self.defs.iter().find(|d| d.name.name() == name)
    }

    /// Iterates over the definitions.
    pub fn iter(&self) -> impl Iterator<Item = &Def> {
        self.defs.iter()
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` if the program has no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Total annotation count across all definitions.
    pub fn annotation_count(&self) -> usize {
        self.defs.iter().map(Def::annotation_count).sum()
    }
}

impl FromIterator<Def> for Program {
    fn from_iter<I: IntoIterator<Item = Def>>(iter: I) -> Self {
        Program {
            defs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_collect_and_look_up_defs() {
        let p: Program = [
            Def::new(
                "id",
                RelType::arrow0(RelType::BoolR, RelType::BoolR),
                Expr::lam("x", Expr::var("x")),
            ),
            Def::new("k", RelType::BoolR, Expr::Bool(true)),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
        assert!(p.def("id").is_some());
        assert!(p.def("nope").is_none());
        assert!(!p.is_empty());
    }

    #[test]
    fn reflexive_defs_reuse_the_left_body() {
        let d = Def::new("k", RelType::BoolR, Expr::Bool(true));
        assert_eq!(d.right_or_left(), &Expr::Bool(true));
        let d2 = Def::relating(
            "two",
            RelType::bool_u(),
            Expr::Bool(true),
            Expr::Bool(false),
        );
        assert_eq!(d2.right_or_left(), &Expr::Bool(false));
    }

    #[test]
    fn annotation_effort_counts_the_top_level_type() {
        let d = Def::new("k", RelType::BoolR, Expr::Bool(true));
        assert_eq!(d.annotation_count(), 1);
        let d = Def::new("k", RelType::BoolR, Expr::Bool(true).anno(RelType::BoolR));
        assert_eq!(d.annotation_count(), 2);
        let p: Program = [d].into_iter().collect();
        assert_eq!(p.annotation_count(), 2);
    }
}
