//! Lexer for the concrete syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `=`
    Equals,
    /// `==`
    EqEq,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `<=`
    Leq,
    /// `<`
    Lt,
    /// `>=`
    Geq,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `~`
    Tilde,
    /// `@`
    At,
    /// `\`
    Backslash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::ColonColon => write!(f, "::"),
            Token::Equals => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::Arrow => write!(f, "->"),
            Token::FatArrow => write!(f, "=>"),
            Token::Leq => write!(f, "<="),
            Token::Lt => write!(f, "<"),
            Token::Geq => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Tilde => write!(f, "~"),
            Token::At => write!(f, "@"),
            Token::Backslash => write!(f, "\\"),
        }
    }
}

/// A token paired with its line number (1-based), for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line on which the token starts.
    pub line: usize,
}

/// Errors produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of the problem.
    pub message: String,
    /// Line on which it occurred.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string.
///
/// Comments run from `--` to the end of the line.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed integers.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                out.push(Spanned {
                    token: Token::Arrow,
                    line,
                });
                i += 2;
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    line,
                });
                i += 1;
            }
            '=' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Spanned {
                    token: Token::EqEq,
                    line,
                });
                i += 2;
            }
            '=' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                out.push(Spanned {
                    token: Token::FatArrow,
                    line,
                });
                i += 2;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Equals,
                    line,
                });
                i += 1;
            }
            '<' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Spanned {
                    token: Token::Leq,
                    line,
                });
                i += 2;
            }
            '<' => {
                out.push(Spanned {
                    token: Token::Lt,
                    line,
                });
                i += 1;
            }
            '>' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Spanned {
                    token: Token::Geq,
                    line,
                });
                i += 2;
            }
            '>' => {
                out.push(Spanned {
                    token: Token::Gt,
                    line,
                });
                i += 1;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == ':' => {
                out.push(Spanned {
                    token: Token::ColonColon,
                    line,
                });
                i += 2;
            }
            ':' => {
                out.push(Spanned {
                    token: Token::Colon,
                    line,
                });
                i += 1;
            }
            '&' if i + 1 < bytes.len() && bytes[i + 1] == '&' => {
                out.push(Spanned {
                    token: Token::AndAnd,
                    line,
                });
                i += 2;
            }
            '&' => {
                out.push(Spanned {
                    token: Token::Amp,
                    line,
                });
                i += 1;
            }
            '|' if i + 1 < bytes.len() && bytes[i + 1] == '|' => {
                out.push(Spanned {
                    token: Token::OrOr,
                    line,
                });
                i += 2;
            }
            '|' => {
                out.push(Spanned {
                    token: Token::Pipe,
                    line,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    line,
                });
                i += 1;
            }
            '{' => {
                out.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semi,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    token: Token::Plus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(Spanned {
                    token: Token::Slash,
                    line,
                });
                i += 1;
            }
            '%' => {
                out.push(Spanned {
                    token: Token::Percent,
                    line,
                });
                i += 1;
            }
            '~' => {
                out.push(Spanned {
                    token: Token::Tilde,
                    line,
                });
                i += 1;
            }
            '@' => {
                out.push(Spanned {
                    token: Token::At,
                    line,
                });
                i += 1;
            }
            '\\' => {
                out.push(Spanned {
                    token: Token::Backslash,
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("integer literal `{text}` is out of range"),
                    line,
                })?;
                out.push(Spanned {
                    token: Token::Int(value),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Spanned {
                    token: Token::Ident(text),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_symbols_and_identifiers() {
        assert_eq!(
            toks("lam x . x"),
            vec![
                Token::Ident("lam".into()),
                Token::Ident("x".into()),
                Token::Dot,
                Token::Ident("x".into())
            ]
        );
        assert_eq!(
            toks("a -> [3] b"),
            vec![
                Token::Ident("a".into()),
                Token::Arrow,
                Token::LBracket,
                Token::Int(3),
                Token::RBracket,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn distinguishes_compound_operators() {
        assert_eq!(
            toks("<= < == = :: : && & => ->"),
            vec![
                Token::Leq,
                Token::Lt,
                Token::EqEq,
                Token::Equals,
                Token::ColonColon,
                Token::Colon,
                Token::AndAnd,
                Token::Amp,
                Token::FatArrow,
                Token::Arrow,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let spanned = tokenize("x -- comment\ny").unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
    }

    #[test]
    fn minus_vs_arrow_vs_comment() {
        assert_eq!(
            toks("a - b"),
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Ident("b".into())
            ]
        );
        assert_eq!(
            toks("a -> b"),
            vec![
                Token::Ident("a".into()),
                Token::Arrow,
                Token::Ident("b".into())
            ]
        );
        assert_eq!(toks("a -- b"), vec![Token::Ident("a".into())]);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn primes_are_part_of_identifiers() {
        assert_eq!(toks("r'"), vec![Token::Ident("r'".into())]);
    }
}
