//! Recursive-descent parser for the concrete syntax.
//!
//! The grammar (modulo precedence) is:
//!
//! ```text
//! program   ::= (def | assume)*
//! def       ::= 'def' ident ':' reltype ('@' idx)? '=' expr ('~' expr)? ';'
//! assume    ::= 'assume' constr ';'
//!
//! reltype   ::= 'forall' i '::' sort '.' reltype | 'exists' i '::' sort '.' reltype
//!             | '{' constr '}' ('&' | '=>') reltype | relarrow
//! relarrow  ::= relprod ('->' ('[' idx ']')? relarrow)?
//! relprod   ::= relatom ('*' relatom)*
//! relatom   ::= 'unitr' | 'boolr' | 'intr' | 'tv' ident | 'box' relatom
//!             | 'list' '[' idx ';' idx ']' relatom
//!             | 'U' '(' unarytype ',' unarytype ')' | 'UU' unaryatom | '(' reltype ')'
//!
//! unarytype ::= 'forall' i '::' sort '.' unarytype | 'exists' i '::' sort '.' unarytype
//!             | '{' constr '}' ('&' | '=>') unarytype | unaryarrow
//! unaryarrow::= unaryprod ('->' ('[' idx ',' idx ']')? unaryarrow)?
//! unaryprod ::= unaryatom ('*' unaryatom)*
//! unaryatom ::= 'unit' | 'bool' | 'int' | 'tv' ident | 'list' '[' idx ']' unaryatom
//!             | '(' unarytype ')'
//!
//! expr      ::= 'fix' f '(' x ')' '.' expr | ('lam' | '\') x '.' expr | 'Lam' '.' expr
//!             | 'let' x '=' expr 'in' expr | 'if' expr 'then' expr 'else' expr
//!             | 'case' expr 'of' 'nil' '->' expr '|' h '::' t '->' expr
//!             | 'pack' expr | 'unpack' expr 'as' x 'in' expr | 'clet' expr 'as' x 'in' expr
//!             | binary/application/atom layers (see the module source)
//! ```

use rel_constraint::Constr;
use rel_index::{Idx, IdxVar, Sort};

use crate::expr::{Expr, PrimOp, Var};
use crate::program::{Def, Program};
use crate::token::{tokenize, Spanned, Token};
use crate::types::{CostBounds, RelType, UnaryType};

/// A parse error with a human-readable message and a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation of the problem.
    pub message: String,
    /// Line number (1-based); 0 when the input ended unexpectedly.
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Keywords that may not be used as expression variables and that terminate
/// application argument lists.
const EXPR_KEYWORDS: &[&str] = &[
    "fix", "lam", "Lam", "let", "in", "if", "then", "else", "case", "of", "nil", "cons", "pack",
    "unpack", "clet", "celim", "as", "true", "false", "not", "fst", "snd", "to", "def", "assume",
    "with",
];

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, expected: &Token) -> PResult<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.error(format!("expected `{expected}`, found `{t}`"))
            }
            None => self.error(format!("expected `{expected}`, found end of input")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.error(format!("expected keyword `{kw}`, found `{t}`"))
            }
            None => self.error(format!("expected keyword `{kw}`, found end of input")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                if EXPR_KEYWORDS.contains(&s.as_str()) {
                    let s = s.clone();
                    return self.error(format!("keyword `{s}` cannot be used as a name"));
                }
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => {
                let t = t.clone();
                self.error(format!("expected an identifier, found `{t}`"))
            }
            None => self.error("expected an identifier, found end of input"),
        }
    }

    // ------------------------------------------------------------------
    // Index terms
    // ------------------------------------------------------------------

    fn idx(&mut self) -> PResult<Idx> {
        self.idx_add()
    }

    fn idx_add(&mut self) -> PResult<Idx> {
        let mut lhs = self.idx_mul()?;
        loop {
            if self.eat(&Token::Plus) {
                lhs = lhs + self.idx_mul()?;
            } else if self.eat(&Token::Minus) {
                lhs = lhs - self.idx_mul()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn idx_mul(&mut self) -> PResult<Idx> {
        let mut lhs = self.idx_atom()?;
        loop {
            if self.eat(&Token::Star) {
                lhs = lhs * self.idx_atom()?;
            } else if self.eat(&Token::Slash) {
                lhs = lhs / self.idx_atom()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn idx_atom(&mut self) -> PResult<Idx> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                if n < 0 {
                    return self.error("negative index literals are not allowed");
                }
                Ok(Idx::nat(n as u64))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let i = self.idx()?;
                self.expect(&Token::RParen)?;
                Ok(i)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "inf" => Ok(Idx::infty()),
                    "ceil" | "floor" | "log2" | "pow2" => {
                        self.expect(&Token::LParen)?;
                        let a = self.idx()?;
                        self.expect(&Token::RParen)?;
                        Ok(match name.as_str() {
                            "ceil" => Idx::ceil(a),
                            "floor" => Idx::floor(a),
                            "log2" => Idx::log2(a),
                            _ => Idx::pow2(a),
                        })
                    }
                    "min" | "max" => {
                        self.expect(&Token::LParen)?;
                        let a = self.idx()?;
                        self.expect(&Token::Comma)?;
                        let b = self.idx()?;
                        self.expect(&Token::RParen)?;
                        Ok(if name == "min" {
                            Idx::min(a, b)
                        } else {
                            Idx::max(a, b)
                        })
                    }
                    "sum" => {
                        self.expect(&Token::LParen)?;
                        let var = self.ident()?;
                        self.expect(&Token::Equals)?;
                        let lo = self.idx()?;
                        self.expect_keyword("to")?;
                        let hi = self.idx()?;
                        self.expect(&Token::Comma)?;
                        let body = self.idx()?;
                        self.expect(&Token::RParen)?;
                        Ok(Idx::sum(var, lo, hi, body))
                    }
                    _ => Ok(Idx::var(name)),
                }
            }
            Some(t) => self.error(format!("expected an index term, found `{t}`")),
            None => self.error("expected an index term, found end of input"),
        }
    }

    // ------------------------------------------------------------------
    // Constraints
    // ------------------------------------------------------------------

    fn constr(&mut self) -> PResult<Constr> {
        let mut lhs = self.constr_and()?;
        while self.eat_keyword("or") {
            lhs = lhs.or(self.constr_and()?);
        }
        Ok(lhs)
    }

    fn constr_and(&mut self) -> PResult<Constr> {
        let mut lhs = self.constr_atom()?;
        while self.eat_keyword("and") {
            lhs = lhs.and(self.constr_atom()?);
        }
        Ok(lhs)
    }

    fn constr_atom(&mut self) -> PResult<Constr> {
        if self.eat_keyword("tt") {
            return Ok(Constr::Top);
        }
        if self.eat_keyword("ff") {
            return Ok(Constr::Bot);
        }
        if self.eat_keyword("not") {
            return Ok(self.constr_atom()?.negate());
        }
        if self.peek() == Some(&Token::LParen) {
            // Either a parenthesized constraint or a parenthesized index term
            // starting a comparison: try the former, backtrack to the latter.
            let save = self.pos;
            self.pos += 1;
            if let Ok(c) = self.constr() {
                if self.eat(&Token::RParen) {
                    return Ok(c);
                }
            }
            self.pos = save;
        }
        let lhs = self.idx()?;
        let op = self.bump();
        let rhs = self.idx()?;
        match op {
            Some(Token::Equals) | Some(Token::EqEq) => Ok(Constr::eq(lhs, rhs)),
            Some(Token::Leq) => Ok(Constr::leq(lhs, rhs)),
            Some(Token::Lt) => Ok(Constr::lt(lhs, rhs)),
            Some(Token::Geq) => Ok(Constr::geq(lhs, rhs)),
            Some(Token::Gt) => Ok(Constr::gt(lhs, rhs)),
            Some(t) => self.error(format!("expected a comparison operator, found `{t}`")),
            None => self.error("expected a comparison operator, found end of input"),
        }
    }

    fn sort(&mut self) -> PResult<Sort> {
        if self.eat_keyword("nat") {
            Ok(Sort::Nat)
        } else if self.eat_keyword("real") {
            Ok(Sort::Real)
        } else {
            self.error("expected a sort (`nat` or `real`)")
        }
    }

    // ------------------------------------------------------------------
    // Relational types
    // ------------------------------------------------------------------

    fn rel_type(&mut self) -> PResult<RelType> {
        if self.at_keyword("forall") || self.at_keyword("exists") {
            let is_forall = self.at_keyword("forall");
            self.pos += 1;
            let var = self.ident()?;
            self.expect(&Token::ColonColon)?;
            let sort = self.sort()?;
            self.expect(&Token::Dot)?;
            let body = self.rel_type()?;
            return Ok(if is_forall {
                RelType::forall(IdxVar::new(var), sort, body)
            } else {
                RelType::exists(IdxVar::new(var), sort, body)
            });
        }
        if self.peek() == Some(&Token::LBrace) {
            self.pos += 1;
            let c = self.constr()?;
            self.expect(&Token::RBrace)?;
            if self.eat(&Token::Amp) {
                let body = self.rel_type()?;
                return Ok(RelType::cand(c, body));
            }
            self.expect(&Token::FatArrow)?;
            let body = self.rel_type()?;
            return Ok(RelType::cimpl(c, body));
        }
        self.rel_arrow()
    }

    fn rel_arrow(&mut self) -> PResult<RelType> {
        let lhs = self.rel_prod()?;
        if self.eat(&Token::Arrow) {
            let cost = if self.eat(&Token::LBracket) {
                let c = self.idx()?;
                self.expect(&Token::RBracket)?;
                c
            } else {
                Idx::zero()
            };
            // The codomain may itself start with a quantifier or constraint
            // (e.g. `unitr -> forall n :: nat. …`), so recurse at the top level.
            let rhs = self.rel_type()?;
            Ok(RelType::arrow(lhs, cost, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn rel_prod(&mut self) -> PResult<RelType> {
        let mut lhs = self.rel_atom()?;
        while self.eat(&Token::Star) {
            let rhs = self.rel_atom()?;
            lhs = RelType::prod(lhs, rhs);
        }
        Ok(lhs)
    }

    fn rel_atom(&mut self) -> PResult<RelType> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let t = self.rel_type()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "unitr" => Ok(RelType::UnitR),
                    "boolr" => Ok(RelType::BoolR),
                    "intr" => Ok(RelType::IntR),
                    "tv" => Ok(RelType::TVar(self.ident()?)),
                    "box" => Ok(RelType::boxed(self.rel_atom()?)),
                    "list" => {
                        self.expect(&Token::LBracket)?;
                        let len = self.idx()?;
                        self.expect(&Token::Semi)?;
                        let diff = self.idx()?;
                        self.expect(&Token::RBracket)?;
                        let elem = self.rel_atom()?;
                        Ok(RelType::list(len, diff, elem))
                    }
                    "U" => {
                        self.expect(&Token::LParen)?;
                        let a = self.unary_type()?;
                        self.expect(&Token::Comma)?;
                        let b = self.unary_type()?;
                        self.expect(&Token::RParen)?;
                        Ok(RelType::u(a, b))
                    }
                    "UU" => Ok(RelType::u_same(self.unary_atom()?)),
                    other => self.error(format!("unknown relational type `{other}`")),
                }
            }
            Some(t) => self.error(format!("expected a relational type, found `{t}`")),
            None => self.error("expected a relational type, found end of input"),
        }
    }

    // ------------------------------------------------------------------
    // Unary types
    // ------------------------------------------------------------------

    fn unary_type(&mut self) -> PResult<UnaryType> {
        if self.at_keyword("forall") || self.at_keyword("exists") {
            let is_forall = self.at_keyword("forall");
            self.pos += 1;
            let var = self.ident()?;
            self.expect(&Token::ColonColon)?;
            let sort = self.sort()?;
            self.expect(&Token::Dot)?;
            let body = self.unary_type()?;
            return Ok(if is_forall {
                UnaryType::forall(IdxVar::new(var), sort, body)
            } else {
                UnaryType::exists(IdxVar::new(var), sort, body)
            });
        }
        if self.peek() == Some(&Token::LBrace) {
            self.pos += 1;
            let c = self.constr()?;
            self.expect(&Token::RBrace)?;
            if self.eat(&Token::Amp) {
                let body = self.unary_type()?;
                return Ok(UnaryType::CAnd(c, Box::new(body)));
            }
            self.expect(&Token::FatArrow)?;
            let body = self.unary_type()?;
            return Ok(UnaryType::CImpl(c, Box::new(body)));
        }
        self.unary_arrow()
    }

    fn unary_arrow(&mut self) -> PResult<UnaryType> {
        let lhs = self.unary_prod()?;
        if self.eat(&Token::Arrow) {
            let cost = if self.eat(&Token::LBracket) {
                let lo = self.idx()?;
                self.expect(&Token::Comma)?;
                let hi = self.idx()?;
                self.expect(&Token::RBracket)?;
                CostBounds::new(lo, hi)
            } else {
                CostBounds::unbounded()
            };
            let rhs = self.unary_type()?;
            Ok(UnaryType::arrow(lhs, cost, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn unary_prod(&mut self) -> PResult<UnaryType> {
        let mut lhs = self.unary_atom()?;
        while self.eat(&Token::Star) {
            let rhs = self.unary_atom()?;
            lhs = UnaryType::prod(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_atom(&mut self) -> PResult<UnaryType> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let t = self.unary_type()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "unit" => Ok(UnaryType::Unit),
                    "bool" => Ok(UnaryType::Bool),
                    "int" => Ok(UnaryType::Int),
                    "tv" => Ok(UnaryType::TVar(self.ident()?)),
                    "list" => {
                        self.expect(&Token::LBracket)?;
                        let len = self.idx()?;
                        self.expect(&Token::RBracket)?;
                        let elem = self.unary_atom()?;
                        Ok(UnaryType::list(len, elem))
                    }
                    other => self.error(format!("unknown unary type `{other}`")),
                }
            }
            Some(t) => self.error(format!("expected a unary type, found `{t}`")),
            None => self.error("expected a unary type, found end of input"),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        if self.at_keyword("fix") {
            self.pos += 1;
            let f = self.ident()?;
            self.expect(&Token::LParen)?;
            let x = self.ident()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::Dot)?;
            let body = self.expr()?;
            return Ok(Expr::fix(f, x, body));
        }
        if self.at_keyword("lam") || self.peek() == Some(&Token::Backslash) {
            self.pos += 1;
            let x = self.ident()?;
            self.expect(&Token::Dot)?;
            let body = self.expr()?;
            return Ok(Expr::lam(x, body));
        }
        if self.at_keyword("Lam") {
            self.pos += 1;
            self.expect(&Token::Dot)?;
            let body = self.expr()?;
            return Ok(body.ilam());
        }
        if self.at_keyword("let") {
            self.pos += 1;
            let x = self.ident()?;
            self.expect(&Token::Equals)?;
            let bound = self.expr()?;
            self.expect_keyword("in")?;
            let body = self.expr()?;
            return Ok(Expr::let_in(x, bound, body));
        }
        if self.at_keyword("if") {
            self.pos += 1;
            let cond = self.expr()?;
            self.expect_keyword("then")?;
            let then_branch = self.expr()?;
            self.expect_keyword("else")?;
            let else_branch = self.expr()?;
            return Ok(Expr::if_then_else(cond, then_branch, else_branch));
        }
        if self.at_keyword("case") {
            self.pos += 1;
            let scrut = self.expr()?;
            self.expect_keyword("of")?;
            self.expect_keyword("nil")?;
            self.expect(&Token::Arrow)?;
            let nil_branch = self.expr()?;
            self.expect(&Token::Pipe)?;
            let head = self.ident()?;
            self.expect(&Token::ColonColon)?;
            let tail = self.ident()?;
            self.expect(&Token::Arrow)?;
            let cons_branch = self.expr()?;
            return Ok(Expr::case_list(scrut, nil_branch, head, tail, cons_branch));
        }
        if self.at_keyword("pack") {
            self.pos += 1;
            let e = self.expr()?;
            return Ok(Expr::Pack(Box::new(e)));
        }
        if self.at_keyword("unpack") {
            self.pos += 1;
            let e1 = self.expr()?;
            self.expect_keyword("as")?;
            let x = self.ident()?;
            self.expect_keyword("in")?;
            let e2 = self.expr()?;
            return Ok(Expr::Unpack(Box::new(e1), Var::new(x), Box::new(e2)));
        }
        if self.at_keyword("clet") {
            self.pos += 1;
            let e1 = self.expr()?;
            self.expect_keyword("as")?;
            let x = self.ident()?;
            self.expect_keyword("in")?;
            let e2 = self.expr()?;
            return Ok(Expr::CLet(Box::new(e1), Var::new(x), Box::new(e2)));
        }
        self.expr_or()
    }

    fn expr_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.expr_and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.expr_and()?;
            lhs = Expr::prim2(PrimOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.expr_cmp()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.expr_cmp()?;
            lhs = Expr::prim2(PrimOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> PResult<Expr> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(PrimOp::Eq),
            Some(Token::Leq) => Some(PrimOp::Leq),
            Some(Token::Lt) => Some(PrimOp::Lt),
            Some(Token::Geq) => Some(PrimOp::Leq),
            Some(Token::Gt) => Some(PrimOp::Lt),
            _ => None,
        };
        if let Some(op) = op {
            let flipped = matches!(self.peek(), Some(Token::Geq) | Some(Token::Gt));
            self.pos += 1;
            let rhs = self.expr_add()?;
            Ok(if flipped {
                Expr::prim2(op, rhs, lhs)
            } else {
                Expr::prim2(op, lhs, rhs)
            })
        } else {
            Ok(lhs)
        }
    }

    fn expr_add(&mut self) -> PResult<Expr> {
        let mut lhs = self.expr_mul()?;
        loop {
            if self.eat(&Token::Plus) {
                lhs = Expr::prim2(PrimOp::Add, lhs, self.expr_mul()?);
            } else if self.eat(&Token::Minus) {
                lhs = Expr::prim2(PrimOp::Sub, lhs, self.expr_mul()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_mul(&mut self) -> PResult<Expr> {
        let mut lhs = self.expr_app()?;
        loop {
            if self.eat(&Token::Star) {
                lhs = Expr::prim2(PrimOp::Mul, lhs, self.expr_app()?);
            } else if self.eat(&Token::Slash) {
                lhs = Expr::prim2(PrimOp::Div, lhs, self.expr_app()?);
            } else if self.eat(&Token::Percent) {
                lhs = Expr::prim2(PrimOp::Mod, lhs, self.expr_app()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_app(&mut self) -> PResult<Expr> {
        let mut head = self.expr_prefix()?;
        loop {
            // Index application `e []`.
            if self.peek() == Some(&Token::LBracket) && self.peek2() == Some(&Token::RBracket) {
                self.pos += 2;
                head = head.iapp();
                continue;
            }
            if self.starts_atom() {
                let arg = self.expr_atom()?;
                head = head.app(arg);
                continue;
            }
            return Ok(head);
        }
    }

    fn expr_prefix(&mut self) -> PResult<Expr> {
        if self.at_keyword("fst") {
            self.pos += 1;
            return Ok(Expr::Fst(Box::new(self.expr_prefix()?)));
        }
        if self.at_keyword("snd") {
            self.pos += 1;
            return Ok(Expr::Snd(Box::new(self.expr_prefix()?)));
        }
        if self.at_keyword("celim") {
            self.pos += 1;
            return Ok(Expr::CElim(Box::new(self.expr_prefix()?)));
        }
        if self.at_keyword("not") {
            self.pos += 1;
            return Ok(Expr::Prim(PrimOp::Not, vec![self.expr_prefix()?]));
        }
        self.expr_atom()
    }

    /// Does the next token start an atomic expression (and hence continue an
    /// application)?
    fn starts_atom(&self) -> bool {
        match self.peek() {
            Some(Token::Int(_)) | Some(Token::LParen) => true,
            Some(Token::Ident(s)) => {
                !EXPR_KEYWORDS.contains(&s.as_str())
                    || matches!(s.as_str(), "nil" | "true" | "false" | "cons")
            }
            _ => false,
        }
    }

    fn expr_atom(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Int(n))
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Expr::Bool(false))
                }
                "nil" => {
                    self.pos += 1;
                    Ok(Expr::Nil)
                }
                "cons" => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let a = self.expr()?;
                    self.expect(&Token::Comma)?;
                    let b = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::cons(a, b))
                }
                s if EXPR_KEYWORDS.contains(&s) => {
                    self.error(format!("keyword `{s}` cannot be used as a variable"))
                }
                _ => {
                    self.pos += 1;
                    Ok(Expr::var(name))
                }
            },
            Some(Token::LParen) => {
                self.pos += 1;
                if self.eat(&Token::RParen) {
                    return Ok(Expr::Unit);
                }
                let first = self.expr()?;
                if self.eat(&Token::Comma) {
                    let second = self.expr()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::pair(first, second));
                }
                if self.eat(&Token::Colon) {
                    let ty = self.rel_type()?;
                    let cost = if self.eat(&Token::At) {
                        Some(self.idx()?)
                    } else {
                        None
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Anno(Box::new(first), ty, cost));
                }
                self.expect(&Token::RParen)?;
                Ok(first)
            }
            Some(t) => self.error(format!("expected an expression, found `{t}`")),
            None => self.error("expected an expression, found end of input"),
        }
    }

    // ------------------------------------------------------------------
    // Programs
    // ------------------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program::new();
        let mut pending_axioms: Vec<Constr> = Vec::new();
        while self.peek().is_some() {
            if self.eat_keyword("assume") {
                let c = self.constr()?;
                self.expect(&Token::Semi)?;
                pending_axioms.push(c);
                continue;
            }
            self.expect_keyword("def")?;
            let name = self.ident()?;
            self.expect(&Token::Colon)?;
            let ty = self.rel_type()?;
            let cost = if self.eat(&Token::At) {
                self.idx()?
            } else {
                Idx::zero()
            };
            self.expect(&Token::Equals)?;
            let left = self.expr()?;
            let right = if self.eat(&Token::Tilde) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Token::Semi)?;
            let mut def = Def {
                name: Var::new(name),
                ty,
                cost,
                left,
                right,
                axioms: pending_axioms.clone(),
            };
            def.axioms = pending_axioms.clone();
            prog.push(def);
        }
        Ok(prog)
    }
}

/// Parses a whole program (a sequence of `def`s and `assume`s).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser::new(tokens);
    p.program()
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a complete expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    if p.peek().is_some() {
        return p.error("trailing input after expression");
    }
    Ok(e)
}

/// Parses a single relational type.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a complete relational type.
pub fn parse_rel_type(src: &str) -> Result<RelType, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser::new(tokens);
    let t = p.rel_type()?;
    if p.peek().is_some() {
        return p.error("trailing input after type");
    }
    Ok(t)
}

/// Parses a single index term (exposed for tests and the CLI).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a complete index term.
pub fn parse_idx(src: &str) -> Result<Idx, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser::new(tokens);
    let i = p.idx()?;
    if p.peek().is_some() {
        return p.error("trailing input after index term");
    }
    Ok(i)
}

/// Parses a single constraint (exposed for tests and the CLI).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a complete constraint.
pub fn parse_constr(src: &str) -> Result<Constr, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser::new(tokens);
    let c = p.constr()?;
    if p.peek().is_some() {
        return p.error("trailing input after constraint");
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_index_terms_with_precedence() {
        assert_eq!(
            parse_idx("n + 2 * a").unwrap(),
            Idx::var("n") + Idx::nat(2) * Idx::var("a")
        );
        assert_eq!(
            parse_idx("ceil(n / 2) + floor(n / 2)").unwrap(),
            Idx::half_ceil(Idx::var("n")) + Idx::half_floor(Idx::var("n"))
        );
        assert_eq!(
            parse_idx("sum(i = 0 to h, pow2(i))").unwrap(),
            Idx::sum("i", Idx::zero(), Idx::var("h"), Idx::pow2(Idx::var("i")))
        );
        assert_eq!(parse_idx("inf").unwrap(), Idx::infty());
    }

    #[test]
    fn parses_constraints() {
        assert_eq!(
            parse_constr("n = 0 and a <= n").unwrap(),
            Constr::eq(Idx::var("n"), Idx::zero()).and(Constr::leq(Idx::var("a"), Idx::var("n")))
        );
        assert_eq!(
            parse_constr("(n + 1) <= m or tt").unwrap(),
            Constr::leq(Idx::var("n") + Idx::one(), Idx::var("m")).or(Constr::Top)
        );
        assert_eq!(
            parse_constr("not (a < 1)").unwrap(),
            Constr::lt(Idx::var("a"), Idx::one()).negate()
        );
    }

    #[test]
    fn parses_relational_types() {
        let t = parse_rel_type("list[n; a] intr ->[a * 2] list[n; a] intr").unwrap();
        match t {
            RelType::Arrow(l, cost, r) => {
                assert_eq!(
                    *l,
                    RelType::list(Idx::var("n"), Idx::var("a"), RelType::IntR)
                );
                assert_eq!(cost, Idx::var("a") * Idx::nat(2));
                assert_eq!(
                    *r,
                    RelType::list(Idx::var("n"), Idx::var("a"), RelType::IntR)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_quantified_and_boxed_types() {
        let t = parse_rel_type("box (unitr -> forall n :: nat. forall a :: nat. list[n; a] (UU int) ->[n] UU (list[n] int))")
            .unwrap();
        match t {
            RelType::Boxed(inner) => match *inner {
                RelType::Arrow(_, _, rest) => {
                    assert!(matches!(*rest, RelType::Forall(_, Sort::Nat, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_existential_constraint_types() {
        // bsplit's result type shape.
        let t = parse_rel_type(
            "exists b :: nat. {b <= a} & (list[ceil(n / 2); b] tv e * list[floor(n / 2); a - b] tv e)",
        )
        .unwrap();
        match t {
            RelType::Exists(v, Sort::Nat, body) => {
                assert_eq!(v, IdxVar::new("b"));
                assert!(matches!(*body, RelType::CAnd(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_u_types_with_exec_costs() {
        let t = parse_rel_type("U(int ->[1, 5] int, int)").unwrap();
        match t {
            RelType::U(a, b) => {
                assert!(matches!(*a, UnaryType::Arrow(_, _, _)));
                assert_eq!(*b, UnaryType::Int);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_map_program() {
        let src = r#"
            -- the map example from Section 3 of the paper
            def map : box(tv a ->[t] tv b) ->
                      forall n :: nat. forall al :: nat.
                      list[n; al] tv a ->[t * al] list[n; al] tv b
            = fix map(f). Lam. Lam. lam l.
                case l of
                  nil -> nil
                | h :: tl -> cons(f h, map f [] [] tl);
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1);
        let def = prog.def("map").unwrap();
        assert_eq!(def.cost, Idx::zero());
        // fix map(f). Λ. Λ. λl. case ...
        match &def.left {
            Expr::Fix(f, x, body) => {
                assert_eq!(f.name(), "map");
                assert_eq!(x.name(), "f");
                assert!(matches!(**body, Expr::ILam(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn application_groups_left_and_index_application_is_postfix() {
        let e = parse_expr("map f [] [] tl").unwrap();
        // ((((map f) []) []) tl)
        assert_eq!(
            e,
            Expr::var("map")
                .app(Expr::var("f"))
                .iapp()
                .iapp()
                .app(Expr::var("tl"))
        );
    }

    #[test]
    fn parses_pairs_annotations_and_units() {
        assert_eq!(parse_expr("()").unwrap(), Expr::Unit);
        assert_eq!(
            parse_expr("(x, y)").unwrap(),
            Expr::pair(Expr::var("x"), Expr::var("y"))
        );
        let e = parse_expr("(x : boolr)").unwrap();
        assert_eq!(e, Expr::var("x").anno(RelType::BoolR));
        let e = parse_expr("(x : boolr @ 3)").unwrap();
        assert_eq!(e, Expr::var("x").anno_cost(RelType::BoolR, Idx::nat(3)));
    }

    #[test]
    fn parses_case_let_if_and_primitives() {
        let e = parse_expr("case l of nil -> 0 | h :: tl -> h + 1").unwrap();
        assert!(matches!(e, Expr::CaseList { .. }));
        let e = parse_expr("let x = 1 + 2 in x * 3").unwrap();
        assert!(matches!(e, Expr::Let(_, _, _)));
        let e = parse_expr("if x <= 3 then true else false").unwrap();
        assert!(matches!(e, Expr::If(_, _, _)));
        let e = parse_expr("fst p + snd p").unwrap();
        assert_eq!(
            e,
            Expr::prim2(
                PrimOp::Add,
                Expr::Fst(Box::new(Expr::var("p"))),
                Expr::Snd(Box::new(Expr::var("p")))
            )
        );
    }

    #[test]
    fn parses_unpack_clet_and_pack() {
        let e = parse_expr("unpack r as r' in clet r' as z in (fst z, snd z)").unwrap();
        assert!(matches!(e, Expr::Unpack(_, _, _)));
        let e = parse_expr("pack (cons(x, nil))").unwrap();
        assert!(matches!(e, Expr::Pack(_)));
    }

    #[test]
    fn two_sided_definitions_use_tilde() {
        let src = "def two : UU bool = true ~ false;";
        let prog = parse_program(src).unwrap();
        let def = prog.def("two").unwrap();
        assert_eq!(def.left, Expr::Bool(true));
        assert_eq!(def.right, Some(Expr::Bool(false)));
    }

    #[test]
    fn assume_attaches_axioms_to_later_defs() {
        let src = "assume 0 <= 1; def k : boolr = true;";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.def("k").unwrap().axioms.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("def broken : boolr =\n  lam . x;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_expr("cons(1 2)").is_err());
        assert!(
            parse_rel_type("list[n] intr").is_err(),
            "relational lists need both refinements"
        );
    }

    #[test]
    fn keywords_cannot_be_variables() {
        assert!(parse_expr("lam case . x").is_err());
        assert!(parse_expr("then").is_err());
    }
}
