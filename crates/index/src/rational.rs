//! Exact rational arithmetic and rationals extended with `+∞`.
//!
//! The constraint solver reasons about list sizes (naturals) and costs
//! (reals).  All arithmetic in this reproduction is performed over exact
//! rationals so that the symbolic layer of the solver never suffers from
//! floating-point rounding; the numeric fallback layer may convert to `f64`
//! explicitly via [`Rational::to_f64`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(|num|, den) = 1`.
///
/// Arithmetic uses `i128` intermediates and panics on overflow of the final
/// `i64` representation; index terms appearing in type checking are tiny, so
/// this is not a practical limitation (and is documented under "Panics").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational from a numerator and denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or if the normalized representation overflows `i64`.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "rational denominator must be non-zero");
        Self::normalized(num as i128, den as i128)
    }

    fn normalized(num: i128, den: i128) -> Rational {
        debug_assert!(den != 0);
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        let num = sign * num / g;
        let den = (den * sign) / g;
        Rational {
            num: i64::try_from(num).expect("rational numerator overflow"),
            den: i64::try_from(den).expect("rational denominator overflow"),
        }
    }

    /// Creates an integer-valued rational.
    pub fn from_int(n: i64) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator of the normalized representation.
    pub fn numerator(&self) -> i64 {
        self.num
    }

    /// The (positive) denominator of the normalized representation.
    pub fn denominator(&self) -> i64 {
        self.den
    }

    /// Returns `true` if the rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns the largest integer less than or equal to this rational.
    pub fn floor(&self) -> Rational {
        Rational::from_int(self.num.div_euclid(self.den))
    }

    /// Returns the smallest integer greater than or equal to this rational.
    pub fn ceil(&self) -> Rational {
        Rational::from_int(-((-self.num).div_euclid(self.den)))
    }

    /// Converts to `f64`, used only by the numeric fallback layer of the solver.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns the smaller of `self` and `other`.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the absolute value.
    pub fn abs(self) -> Rational {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// The reciprocal `1 / self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rational {
        assert!(!self.is_zero(), "cannot take the reciprocal of zero");
        Self::normalized(self.den as i128, self.num as i128)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_int(i64::try_from(n).expect("natural literal overflows i64"))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::normalized(
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::normalized(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "division of rationals by zero");
        Rational::normalized(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

/// A rational extended with positive infinity.
///
/// `+∞` is used for the trivial relative-cost bound with which RelRef and
/// RelRefU derivations embed into RelCost (`diff(∞)`), and as the neutral
/// upper bound in the solver's interval reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extended {
    /// A finite rational value.
    Finite(Rational),
    /// Positive infinity.
    Infinity,
}

impl Extended {
    /// The finite zero value.
    pub const ZERO: Extended = Extended::Finite(Rational::ZERO);
    /// The finite one value.
    pub const ONE: Extended = Extended::Finite(Rational::ONE);

    /// Returns the finite value, or `None` for `+∞`.
    pub fn finite(self) -> Option<Rational> {
        match self {
            Extended::Finite(q) => Some(q),
            Extended::Infinity => None,
        }
    }

    /// Returns `true` if this is `+∞`.
    pub fn is_infinite(self) -> bool {
        matches!(self, Extended::Infinity)
    }

    /// Returns `true` if this is finite zero.
    pub fn is_zero(self) -> bool {
        matches!(self, Extended::Finite(q) if q.is_zero())
    }

    /// Converts to `f64` (`+∞` maps to `f64::INFINITY`).
    pub fn to_f64(self) -> f64 {
        match self {
            Extended::Finite(q) => q.to_f64(),
            Extended::Infinity => f64::INFINITY,
        }
    }

    /// Pointwise minimum.
    pub fn min(self, other: Extended) -> Extended {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Pointwise maximum.
    pub fn max(self, other: Extended) -> Extended {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Floor; `+∞` floors to itself.
    pub fn floor(self) -> Extended {
        match self {
            Extended::Finite(q) => Extended::Finite(q.floor()),
            Extended::Infinity => Extended::Infinity,
        }
    }

    /// Ceiling; `+∞` ceils to itself.
    pub fn ceil(self) -> Extended {
        match self {
            Extended::Finite(q) => Extended::Finite(q.ceil()),
            Extended::Infinity => Extended::Infinity,
        }
    }

    /// Base-2 logarithm, totalized as `log2(max(x, 1))` and rounded to the
    /// nearest representable rational via `f64` (sufficient for the numeric
    /// solver layer; the symbolic layer keeps `log2` opaque).
    pub fn log2_total(self) -> Extended {
        match self {
            Extended::Infinity => Extended::Infinity,
            Extended::Finite(q) => {
                let x = q.to_f64().max(1.0);
                let l = x.log2();
                // Exact when x is a power of two (the common case in cost
                // recurrences); otherwise a close dyadic approximation.
                let scaled = (l * 4096.0).round() as i64;
                Extended::Finite(Rational::new(scaled, 4096))
            }
        }
    }

    /// `2^self`, totalized; negative exponents produce dyadic fractions and
    /// non-integer exponents go through `f64`.
    pub fn pow2_total(self) -> Extended {
        match self {
            Extended::Infinity => Extended::Infinity,
            Extended::Finite(q) => {
                if q.is_integer() {
                    let e = q.numerator();
                    if (0..62).contains(&e) {
                        Extended::Finite(Rational::from_int(1i64 << e))
                    } else if e < 0 && e > -62 {
                        Extended::Finite(Rational::new(1, 1i64 << (-e)))
                    } else {
                        Extended::Infinity
                    }
                } else {
                    let v = q.to_f64().exp2();
                    let scaled = (v * 4096.0).round() as i64;
                    Extended::Finite(Rational::new(scaled, 4096))
                }
            }
        }
    }
}

impl Default for Extended {
    fn default() -> Self {
        Extended::ZERO
    }
}

impl fmt::Display for Extended {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extended::Finite(q) => write!(f, "{q}"),
            Extended::Infinity => write!(f, "inf"),
        }
    }
}

impl From<Rational> for Extended {
    fn from(q: Rational) -> Self {
        Extended::Finite(q)
    }
}

impl From<i64> for Extended {
    fn from(n: i64) -> Self {
        Extended::Finite(Rational::from_int(n))
    }
}

impl From<i32> for Extended {
    fn from(n: i32) -> Self {
        Extended::Finite(Rational::from_int(n as i64))
    }
}

impl From<u64> for Extended {
    fn from(n: u64) -> Self {
        Extended::Finite(Rational::from(n))
    }
}

impl Add for Extended {
    type Output = Extended;
    fn add(self, rhs: Extended) -> Extended {
        match (self, rhs) {
            (Extended::Finite(a), Extended::Finite(b)) => Extended::Finite(a + b),
            _ => Extended::Infinity,
        }
    }
}

impl Sub for Extended {
    type Output = Extended;
    /// Subtraction; `∞ - x = ∞` for finite `x`, and `∞ - ∞ = 0` by convention
    /// (it only arises from degenerate cost differences where any value is
    /// sound as an upper bound of `-∞`).
    fn sub(self, rhs: Extended) -> Extended {
        match (self, rhs) {
            (Extended::Finite(a), Extended::Finite(b)) => Extended::Finite(a - b),
            (Extended::Infinity, Extended::Finite(_)) => Extended::Infinity,
            (Extended::Finite(_), Extended::Infinity) => Extended::ZERO,
            (Extended::Infinity, Extended::Infinity) => Extended::ZERO,
        }
    }
}

impl Mul for Extended {
    type Output = Extended;
    fn mul(self, rhs: Extended) -> Extended {
        match (self, rhs) {
            (Extended::Finite(a), Extended::Finite(b)) => Extended::Finite(a * b),
            (Extended::Infinity, x) | (x, Extended::Infinity) => {
                if x.is_zero() {
                    Extended::ZERO
                } else {
                    Extended::Infinity
                }
            }
        }
    }
}

impl Div for Extended {
    type Output = Extended;
    fn div(self, rhs: Extended) -> Extended {
        match (self, rhs) {
            (_, Extended::Infinity) => Extended::ZERO,
            (Extended::Infinity, _) => Extended::Infinity,
            (Extended::Finite(a), Extended::Finite(b)) => {
                if b.is_zero() {
                    // Division by zero in an index term is a modelling error;
                    // the solver treats it as unbounded.
                    Extended::Infinity
                } else {
                    Extended::Finite(a / b)
                }
            }
        }
    }
}

impl PartialOrd for Extended {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Extended {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Extended::Finite(a), Extended::Finite(b)) => a.cmp(b),
            (Extended::Infinity, Extended::Infinity) => Ordering::Equal,
            (Extended::Infinity, _) => Ordering::Greater,
            (_, Extended::Infinity) => Ordering::Less,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_fractions() {
        let q = Rational::new(6, -4);
        assert_eq!(q.numerator(), -3);
        assert_eq!(q.denominator(), 2);
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
    }

    #[test]
    fn floor_and_ceil_match_mathematical_definition() {
        assert_eq!(Rational::new(7, 2).floor(), Rational::from_int(3));
        assert_eq!(Rational::new(7, 2).ceil(), Rational::from_int(4));
        assert_eq!(Rational::new(-7, 2).floor(), Rational::from_int(-4));
        assert_eq!(Rational::new(-7, 2).ceil(), Rational::from_int(-3));
        assert_eq!(Rational::from_int(5).floor(), Rational::from_int(5));
        assert_eq!(Rational::from_int(5).ceil(), Rational::from_int(5));
    }

    #[test]
    fn ordering_is_consistent_with_subtraction() {
        let a = Rational::new(3, 7);
        let b = Rational::new(4, 9);
        assert!(a < b);
        assert!((b - a) > Rational::ZERO);
    }

    #[test]
    fn extended_saturates_at_infinity() {
        let inf = Extended::Infinity;
        let one = Extended::ONE;
        assert_eq!(inf + one, inf);
        assert_eq!(inf * one, inf);
        assert_eq!(inf * Extended::ZERO, Extended::ZERO);
        assert!(one < inf);
        assert_eq!(one.min(inf), one);
        assert_eq!(one.max(inf), inf);
    }

    #[test]
    fn pow2_and_log2_roundtrip_on_powers_of_two() {
        for e in 0..20i64 {
            let p = Extended::from(e).pow2_total();
            assert_eq!(p.log2_total(), Extended::from(e));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::from_int(4).to_string(), "4");
        assert_eq!(Extended::Infinity.to_string(), "inf");
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
