//! Symbolic simplification of index terms.
//!
//! Normalization performs constant folding and unit-law simplification so
//! that (a) constraints are smaller before they reach the solver and (b)
//! syntactic type equivalence (`list[1 + 2]^α τ ≡ list[3]^α τ`) succeeds in
//! the common cases without consulting the solver at all.
//!
//! Normalization is *sound*: it preserves the value of the term under every
//! environment (checked by the property tests in this module).

use crate::rational::Extended;
use crate::term::Idx;

/// Returns a simplified term denoting the same function of its free variables.
///
/// Routed through the hash-consing pool of [`crate::pool`]: terms are
/// interned (deduplicating shared subtrees) and normalization of each
/// distinct node is computed once per thread, so the solver's repeated
/// simplification of the same goals costs memo lookups instead of tree
/// rebuilds.  The result is identical to [`normalize_tree`] (pinned by the
/// property tests here and in `pool`).
pub fn normalize(idx: &Idx) -> Idx {
    crate::pool::normalize_cached(idx)
}

/// The direct tree-walking normalizer (one full rebuild per call).  The
/// pooled [`normalize`] is the production entry point; this form is kept as
/// the reference implementation for differential tests and benchmarks.
pub fn normalize_tree(idx: &Idx) -> Idx {
    match idx {
        Idx::Var(_) | Idx::Const(_) | Idx::Infty => idx.clone(),
        Idx::Add(a, b) => fold_add(normalize_tree(a), normalize_tree(b)),
        Idx::Sub(a, b) => fold_sub(normalize_tree(a), normalize_tree(b)),
        Idx::Mul(a, b) => fold_mul(normalize_tree(a), normalize_tree(b)),
        Idx::Div(a, b) => fold_div(normalize_tree(a), normalize_tree(b)),
        Idx::Ceil(a) => fold_ceil(normalize_tree(a)),
        Idx::Floor(a) => fold_floor(normalize_tree(a)),
        Idx::Min(a, b) => fold_min(normalize_tree(a), normalize_tree(b)),
        Idx::Max(a, b) => fold_max(normalize_tree(a), normalize_tree(b)),
        Idx::Log2(a) => fold_unary_const(normalize_tree(a), Idx::Log2, Extended::log2_total),
        Idx::Pow2(a) => fold_unary_const(normalize_tree(a), Idx::Pow2, Extended::pow2_total),
        Idx::Sum { var, lo, hi, body } => Idx::Sum {
            var: var.clone(),
            lo: Box::new(normalize_tree(lo)),
            hi: Box::new(normalize_tree(hi)),
            body: Box::new(normalize_tree(body)),
        },
    }
}

fn lift(e: Extended) -> Idx {
    match e {
        Extended::Finite(q) => Idx::Const(q),
        Extended::Infinity => Idx::Infty,
    }
}

fn fold_add(a: Idx, b: Idx) -> Idx {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => lift(x + y),
        (Some(x), None) if x.is_zero() => b,
        (None, Some(y)) if y.is_zero() => a,
        _ => Idx::Add(Box::new(a), Box::new(b)),
    }
}

fn fold_sub(a: Idx, b: Idx) -> Idx {
    if a == b {
        return Idx::zero();
    }
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => lift(x - y),
        (None, Some(y)) if y.is_zero() => a,
        _ => Idx::Sub(Box::new(a), Box::new(b)),
    }
}

fn fold_mul(a: Idx, b: Idx) -> Idx {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => lift(x * y),
        (Some(x), _) if x.is_zero() => Idx::zero(),
        (_, Some(y)) if y.is_zero() => Idx::zero(),
        (Some(x), None) if x == Extended::ONE => b,
        (None, Some(y)) if y == Extended::ONE => a,
        _ => Idx::Mul(Box::new(a), Box::new(b)),
    }
}

fn fold_div(a: Idx, b: Idx) -> Idx {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) if !y.is_zero() => lift(x / y),
        (Some(x), _) if x.is_zero() => Idx::zero(),
        (None, Some(y)) if y == Extended::ONE => a,
        _ => Idx::Div(Box::new(a), Box::new(b)),
    }
}

fn fold_ceil(a: Idx) -> Idx {
    if let Some(x) = a.as_const() {
        return lift(x.ceil());
    }
    // ⌈⌈e⌉⌉ = ⌈e⌉ and ceilings of syntactic naturals are redundant only for
    // constants, which the branch above already covers.
    if let Idx::Ceil(_) | Idx::Floor(_) = a {
        return a;
    }
    Idx::Ceil(Box::new(a))
}

fn fold_floor(a: Idx) -> Idx {
    if let Some(x) = a.as_const() {
        return lift(x.floor());
    }
    if let Idx::Ceil(_) | Idx::Floor(_) = a {
        return a;
    }
    Idx::Floor(Box::new(a))
}

fn fold_min(a: Idx, b: Idx) -> Idx {
    if a == b {
        return a;
    }
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => lift(x.min(y)),
        (Some(Extended::Infinity), _) => b,
        (_, Some(Extended::Infinity)) => a,
        _ => Idx::Min(Box::new(a), Box::new(b)),
    }
}

fn fold_max(a: Idx, b: Idx) -> Idx {
    if a == b {
        return a;
    }
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => lift(x.max(y)),
        (Some(Extended::Infinity), _) | (_, Some(Extended::Infinity)) => Idx::Infty,
        (Some(x), None) if x.is_zero() => b,
        (None, Some(y)) if y.is_zero() => a,
        _ => Idx::Max(Box::new(a), Box::new(b)),
    }
}

fn fold_unary_const(a: Idx, rebuild: fn(Box<Idx>) -> Idx, op: fn(Extended) -> Extended) -> Idx {
    match a.as_const() {
        Some(x) => lift(op(x)),
        None => rebuild(Box::new(a)),
    }
}

/// Returns `true` when the two terms are syntactically equal after
/// normalization — a cheap sufficient condition for semantic equality used by
/// algorithmic type equivalence before falling back to the solver.
pub fn definitely_equal(a: &Idx, b: &Idx) -> bool {
    normalize(a) == normalize(b)
}

/// Convenience: `normalize` to a constant if the term is ground.
pub fn const_value(idx: &Idx) -> Option<Extended> {
    normalize(idx).as_const()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::IdxEnv;
    use crate::rational::Rational;
    use proptest::prelude::*;

    #[test]
    fn constant_folding() {
        let i = Idx::nat(1) + Idx::nat(2);
        assert_eq!(normalize(&i), Idx::nat(3));
        let i = Idx::nat(3) * Idx::nat(4) - Idx::nat(2);
        assert_eq!(normalize(&i), Idx::nat(10));
        let i = Idx::ceil(Idx::nat(7) / Idx::nat(2));
        assert_eq!(normalize(&i), Idx::nat(4));
    }

    #[test]
    fn unit_laws() {
        let n = Idx::var("n");
        assert_eq!(normalize(&(n.clone() + Idx::zero())), n);
        assert_eq!(normalize(&(Idx::zero() + n.clone())), n);
        assert_eq!(normalize(&(n.clone() * Idx::one())), n);
        assert_eq!(normalize(&(n.clone() * Idx::zero())), Idx::zero());
        assert_eq!(normalize(&(n.clone() - n.clone())), Idx::zero());
        assert_eq!(normalize(&Idx::min(n.clone(), n.clone())), n);
    }

    #[test]
    fn infinity_laws() {
        let n = Idx::var("n");
        assert_eq!(normalize(&Idx::min(Idx::infty(), n.clone())), n);
        assert_eq!(normalize(&Idx::max(Idx::infty(), n)), Idx::infty());
    }

    #[test]
    fn definitely_equal_sees_through_arithmetic() {
        assert!(definitely_equal(&(Idx::nat(1) + Idx::nat(2)), &Idx::nat(3)));
        assert!(!definitely_equal(&Idx::var("n"), &Idx::var("m")));
    }

    #[test]
    fn const_value_on_ground_terms() {
        assert_eq!(
            const_value(&(Idx::nat(6) / Idx::nat(4))),
            Some(Extended::Finite(Rational::new(3, 2)))
        );
        assert_eq!(const_value(&Idx::var("n")), None);
    }

    // ---- property tests: normalization preserves meaning ----

    fn arb_idx() -> impl Strategy<Value = Idx> {
        let leaf = prop_oneof![
            (0u64..6).prop_map(Idx::nat),
            Just(Idx::var("n")),
            Just(Idx::var("a")),
            Just(Idx::var("b")),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::min(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::max(a, b)),
                inner.clone().prop_map(Idx::ceil),
                inner.clone().prop_map(Idx::floor),
                inner.clone().prop_map(|a| a / Idx::nat(2)),
                // Σ exercises the binder path (its shadowed variable shares
                // a name with a free leaf on purpose).
                (inner.clone(), inner.clone()).prop_map(|(hi, body)| {
                    Idx::sum("a", Idx::zero(), Idx::min(hi, Idx::nat(6)), body)
                }),
            ]
        })
    }

    proptest! {
        #[test]
        fn normalize_preserves_evaluation(idx in arb_idx(), n in 0i64..12, a in 0i64..12, b in 0i64..12) {
            let env = IdxEnv::from_pairs([("n", Extended::from(n)), ("a", Extended::from(a)), ("b", Extended::from(b))]);
            let before = idx.eval(&env).unwrap();
            let after = normalize(&idx).eval(&env).unwrap();
            prop_assert_eq!(before, after);
        }

        #[test]
        fn normalize_is_idempotent(idx in arb_idx()) {
            let once = normalize(&idx);
            let twice = normalize(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn normalize_never_grows_terms(idx in arb_idx()) {
            prop_assert!(normalize(&idx).size() <= idx.size());
        }
    }
}
