//! Index variables and fresh-name generation.

use std::fmt;
use std::sync::Arc;

use crate::sort::Sort;

/// An index variable (`i`, `n`, `α`, `t`, … in the paper).
///
/// Variables are interned as reference-counted strings so that the index-term
/// AST can be cloned cheaply during constraint generation.  Names beginning
/// with `%` are reserved for machine-generated (existential) variables, see
/// [`IdxVarGen`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdxVar(Arc<str>);

impl IdxVar {
    /// Creates an index variable with the given name.
    pub fn new(name: impl Into<String>) -> IdxVar {
        IdxVar(Arc::from(name.into()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this variable was produced by [`IdxVarGen`], i.e. it
    /// is an algorithmically introduced existential variable rather than a
    /// programmer-written one.
    pub fn is_generated(&self) -> bool {
        self.0.starts_with('%')
    }
}

impl fmt::Display for IdxVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for IdxVar {
    fn from(s: &str) -> Self {
        IdxVar::new(s)
    }
}

impl From<String> for IdxVar {
    fn from(s: String) -> Self {
        IdxVar::new(s)
    }
}

/// Generator of fresh index variables.
///
/// The bidirectional rules of BiRelCost introduce fresh existentially
/// quantified variables (the set `ψ` of the paper) for sizes of list tails
/// (`alg-r-consC-↓`) and for costs of checked arguments (`alg-r-app-↑`).
/// Every checker run owns one generator so that generated names never clash
/// with programmer-written index variables.
#[derive(Debug, Default)]
pub struct IdxVarGen {
    counter: u64,
}

impl IdxVarGen {
    /// Creates a generator starting at zero.
    pub fn new() -> IdxVarGen {
        IdxVarGen::default()
    }

    /// Produces a fresh variable with a hint describing its purpose and the
    /// sort recorded in the name (purely cosmetic; sorts are tracked by the
    /// contexts that bind the variable).
    pub fn fresh(&mut self, hint: &str, sort: Sort) -> IdxVar {
        let n = self.counter;
        self.counter += 1;
        let tag = match sort {
            Sort::Nat => "n",
            Sort::Real => "r",
        };
        IdxVar::new(format!("%{hint}{tag}{n}"))
    }

    /// Number of variables generated so far.
    pub fn count(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_variables_are_distinct_and_generated() {
        let mut gen = IdxVarGen::new();
        let a = gen.fresh("t", Sort::Real);
        let b = gen.fresh("t", Sort::Real);
        assert_ne!(a, b);
        assert!(a.is_generated());
        assert!(b.is_generated());
        assert_eq!(gen.count(), 2);
    }

    #[test]
    fn user_variables_are_not_generated() {
        let n = IdxVar::new("n");
        assert!(!n.is_generated());
        assert_eq!(n.name(), "n");
        assert_eq!(n.to_string(), "n");
    }

    #[test]
    fn equality_is_by_name() {
        assert_eq!(IdxVar::new("alpha"), IdxVar::from("alpha"));
        assert_ne!(IdxVar::new("alpha"), IdxVar::new("beta"));
    }
}
