//! Hash-consed index terms: an arena interner with `u32` node ids.
//!
//! The solver's numeric layer evaluates the same index terms thousands of
//! times (once per grid point), and its symbolic layer normalizes the same
//! sub-terms at every structural decomposition level.  The `Box`-tree
//! [`Idx`] representation makes both walks allocation-heavy: every
//! `normalize` rebuilds the tree and every structural equality re-compares
//! it.  [`IdxPool`] stores each distinct term exactly once in a flat arena:
//!
//! * **O(1) structural equality** — two terms are equal iff their [`IdxId`]s
//!   are equal (interning deduplicates structurally identical subtrees);
//! * **cached free-variable sets** — computed bottom-up once per node at
//!   interning time, shared via `Arc` between nodes;
//! * **memoized normalization** — `normalize` over ids is computed once per
//!   node and reused for every later occurrence of the same sub-term, which
//!   is what makes the solver's repeated `simplify` passes cheap.
//!
//! The pool mirrors the fold rules of [`crate::normalize`] exactly; the
//! property tests in that module (and the differential test below) pin the
//! two implementations together.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::Arc;

use crate::eval::{EvalError, IdxEnv};
use crate::rational::{Extended, Rational};
use crate::term::Idx;
use crate::var::IdxVar;

/// A handle to an interned index term.  Ids are only meaningful relative to
/// the [`IdxPool`] that produced them; two ids from the same pool are equal
/// iff the terms are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdxId(u32);

impl IdxId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena node: the [`Idx`] constructors with children replaced by ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// An index variable.
    Var(IdxVar),
    /// A rational literal.
    Const(Rational),
    /// Positive infinity.
    Infty,
    /// `a + b`.
    Add(IdxId, IdxId),
    /// `a - b`.
    Sub(IdxId, IdxId),
    /// `a * b`.
    Mul(IdxId, IdxId),
    /// `a / b`.
    Div(IdxId, IdxId),
    /// `⌈a⌉`.
    Ceil(IdxId),
    /// `⌊a⌋`.
    Floor(IdxId),
    /// `min(a, b)`.
    Min(IdxId, IdxId),
    /// `max(a, b)`.
    Max(IdxId, IdxId),
    /// `log2 a`.
    Log2(IdxId),
    /// `2^a`.
    Pow2(IdxId),
    /// `Σ_{var = lo}^{hi} body`.
    Sum {
        /// Bound summation variable.
        var: IdxVar,
        /// Lower bound (inclusive).
        lo: IdxId,
        /// Upper bound (inclusive).
        hi: IdxId,
        /// Summand.
        body: IdxId,
    },
}

/// A hash-consing arena for index terms.
#[derive(Debug, Default)]
pub struct IdxPool {
    nodes: Vec<Node>,
    /// Dedup index: node hash → candidate ids, verified against the arena
    /// (so each `Node` is stored exactly once, in `nodes`, rather than a
    /// second time as a map key; hash collisions cannot alias nodes).
    ids: HashMap<u64, Vec<IdxId>>,
    free_vars: Vec<Arc<BTreeSet<IdxVar>>>,
    norm_memo: Vec<Option<IdxId>>,
}

fn node_hash(node: &Node) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

impl IdxPool {
    /// An empty pool.
    pub fn new() -> IdxPool {
        IdxPool::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    pub fn node(&self, id: IdxId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Interns a node, deduplicating against all earlier nodes.
    pub fn intern_node(&mut self, node: Node) -> IdxId {
        let hash = node_hash(&node);
        if let Some(bucket) = self.ids.get(&hash) {
            if let Some(&id) = bucket.iter().find(|id| self.nodes[id.index()] == node) {
                return id;
            }
        }
        let id = IdxId(u32::try_from(self.nodes.len()).expect("index-term pool overflow"));
        let fv = self.compute_free_vars(&node);
        self.nodes.push(node);
        self.ids.entry(hash).or_default().push(id);
        self.free_vars.push(fv);
        self.norm_memo.push(None);
        id
    }

    /// Interns a tree term bottom-up, sharing every duplicated subtree.
    pub fn intern(&mut self, idx: &Idx) -> IdxId {
        let node = match idx {
            Idx::Var(v) => Node::Var(v.clone()),
            Idx::Const(q) => Node::Const(*q),
            Idx::Infty => Node::Infty,
            Idx::Add(a, b) => Node::Add(self.intern(a), self.intern(b)),
            Idx::Sub(a, b) => Node::Sub(self.intern(a), self.intern(b)),
            Idx::Mul(a, b) => Node::Mul(self.intern(a), self.intern(b)),
            Idx::Div(a, b) => Node::Div(self.intern(a), self.intern(b)),
            Idx::Ceil(a) => Node::Ceil(self.intern(a)),
            Idx::Floor(a) => Node::Floor(self.intern(a)),
            Idx::Min(a, b) => Node::Min(self.intern(a), self.intern(b)),
            Idx::Max(a, b) => Node::Max(self.intern(a), self.intern(b)),
            Idx::Log2(a) => Node::Log2(self.intern(a)),
            Idx::Pow2(a) => Node::Pow2(self.intern(a)),
            Idx::Sum { var, lo, hi, body } => Node::Sum {
                var: var.clone(),
                lo: self.intern(lo),
                hi: self.intern(hi),
                body: self.intern(body),
            },
        };
        self.intern_node(node)
    }

    /// Reconstructs the tree form of an interned term.
    pub fn to_idx(&self, id: IdxId) -> Idx {
        match self.node(id).clone() {
            Node::Var(v) => Idx::Var(v),
            Node::Const(q) => Idx::Const(q),
            Node::Infty => Idx::Infty,
            Node::Add(a, b) => Idx::Add(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Sub(a, b) => Idx::Sub(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Mul(a, b) => Idx::Mul(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Div(a, b) => Idx::Div(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Ceil(a) => Idx::Ceil(Box::new(self.to_idx(a))),
            Node::Floor(a) => Idx::Floor(Box::new(self.to_idx(a))),
            Node::Min(a, b) => Idx::Min(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Max(a, b) => Idx::Max(Box::new(self.to_idx(a)), Box::new(self.to_idx(b))),
            Node::Log2(a) => Idx::Log2(Box::new(self.to_idx(a))),
            Node::Pow2(a) => Idx::Pow2(Box::new(self.to_idx(a))),
            Node::Sum { var, lo, hi, body } => Idx::Sum {
                var,
                lo: Box::new(self.to_idx(lo)),
                hi: Box::new(self.to_idx(hi)),
                body: Box::new(self.to_idx(body)),
            },
        }
    }

    /// The cached free-variable set of an interned term.
    pub fn free_vars(&self, id: IdxId) -> &Arc<BTreeSet<IdxVar>> {
        &self.free_vars[id.index()]
    }

    fn compute_free_vars(&self, node: &Node) -> Arc<BTreeSet<IdxVar>> {
        // Children are already interned, so their sets are cached; leaf and
        // single-child cases share the child's Arc outright.
        let empty = || Arc::new(BTreeSet::new());
        match node {
            Node::Var(v) => Arc::new(BTreeSet::from([v.clone()])),
            Node::Const(_) | Node::Infty => empty(),
            Node::Ceil(a) | Node::Floor(a) | Node::Log2(a) | Node::Pow2(a) => {
                Arc::clone(&self.free_vars[a.index()])
            }
            Node::Add(a, b)
            | Node::Sub(a, b)
            | Node::Mul(a, b)
            | Node::Div(a, b)
            | Node::Min(a, b)
            | Node::Max(a, b) => {
                let fa = &self.free_vars[a.index()];
                let fb = &self.free_vars[b.index()];
                if fb.is_subset(fa) {
                    Arc::clone(fa)
                } else if fa.is_subset(fb) {
                    Arc::clone(fb)
                } else {
                    Arc::new(fa.union(fb).cloned().collect())
                }
            }
            Node::Sum { var, lo, hi, body } => {
                let mut set: BTreeSet<IdxVar> = self.free_vars[body.index()]
                    .iter()
                    .filter(|v| *v != var)
                    .cloned()
                    .collect();
                set.extend(self.free_vars[lo.index()].iter().cloned());
                set.extend(self.free_vars[hi.index()].iter().cloned());
                Arc::new(set)
            }
        }
    }

    /// Returns `Some(q)` when the interned term is a literal constant.
    pub fn as_const(&self, id: IdxId) -> Option<Extended> {
        match self.node(id) {
            Node::Const(q) => Some(Extended::Finite(*q)),
            Node::Infty => Some(Extended::Infinity),
            _ => None,
        }
    }

    fn lift(&mut self, e: Extended) -> IdxId {
        match e {
            Extended::Finite(q) => self.intern_node(Node::Const(q)),
            Extended::Infinity => self.intern_node(Node::Infty),
        }
    }

    /// Memoized normalization over ids, mirroring [`crate::normalize`]'s fold
    /// rules exactly (pinned by the differential property test below).
    pub fn normalize(&mut self, id: IdxId) -> IdxId {
        if let Some(n) = self.norm_memo[id.index()] {
            return n;
        }
        let result = match self.node(id).clone() {
            Node::Var(_) | Node::Const(_) | Node::Infty => id,
            Node::Add(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_add(a, b)
            }
            Node::Sub(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_sub(a, b)
            }
            Node::Mul(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_mul(a, b)
            }
            Node::Div(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_div(a, b)
            }
            Node::Ceil(a) => {
                let a = self.normalize(a);
                self.fold_round(a, true)
            }
            Node::Floor(a) => {
                let a = self.normalize(a);
                self.fold_round(a, false)
            }
            Node::Min(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_min(a, b)
            }
            Node::Max(a, b) => {
                let (a, b) = (self.normalize(a), self.normalize(b));
                self.fold_max(a, b)
            }
            Node::Log2(a) => {
                let a = self.normalize(a);
                match self.as_const(a) {
                    Some(x) => self.lift(x.log2_total()),
                    None => self.intern_node(Node::Log2(a)),
                }
            }
            Node::Pow2(a) => {
                let a = self.normalize(a);
                match self.as_const(a) {
                    Some(x) => self.lift(x.pow2_total()),
                    None => self.intern_node(Node::Pow2(a)),
                }
            }
            Node::Sum { var, lo, hi, body } => {
                let lo = self.normalize(lo);
                let hi = self.normalize(hi);
                let body = self.normalize(body);
                self.intern_node(Node::Sum { var, lo, hi, body })
            }
        };
        self.norm_memo[id.index()] = Some(result);
        // A normal form normalizes to itself; seeding the memo for the result
        // saves the re-walk when the normalized term is interned elsewhere.
        self.norm_memo[result.index()] = Some(result);
        result
    }

    fn fold_add(&mut self, a: IdxId, b: IdxId) -> IdxId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.lift(x + y),
            (Some(x), None) if x.is_zero() => b,
            (None, Some(y)) if y.is_zero() => a,
            _ => self.intern_node(Node::Add(a, b)),
        }
    }

    fn fold_sub(&mut self, a: IdxId, b: IdxId) -> IdxId {
        if a == b {
            return self.lift(Extended::ZERO);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.lift(x - y),
            (None, Some(y)) if y.is_zero() => a,
            _ => self.intern_node(Node::Sub(a, b)),
        }
    }

    fn fold_mul(&mut self, a: IdxId, b: IdxId) -> IdxId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.lift(x * y),
            (Some(x), _) if x.is_zero() => self.lift(Extended::ZERO),
            (_, Some(y)) if y.is_zero() => self.lift(Extended::ZERO),
            (Some(x), None) if x == Extended::ONE => b,
            (None, Some(y)) if y == Extended::ONE => a,
            _ => self.intern_node(Node::Mul(a, b)),
        }
    }

    fn fold_div(&mut self, a: IdxId, b: IdxId) -> IdxId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) if !y.is_zero() => self.lift(x / y),
            (Some(x), _) if x.is_zero() => self.lift(Extended::ZERO),
            (None, Some(y)) if y == Extended::ONE => a,
            _ => self.intern_node(Node::Div(a, b)),
        }
    }

    fn fold_round(&mut self, a: IdxId, ceil: bool) -> IdxId {
        if let Some(x) = self.as_const(a) {
            return self.lift(if ceil { x.ceil() } else { x.floor() });
        }
        if matches!(self.node(a), Node::Ceil(_) | Node::Floor(_)) {
            return a;
        }
        self.intern_node(if ceil { Node::Ceil(a) } else { Node::Floor(a) })
    }

    fn fold_min(&mut self, a: IdxId, b: IdxId) -> IdxId {
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.lift(x.min(y)),
            (Some(Extended::Infinity), _) => b,
            (_, Some(Extended::Infinity)) => a,
            _ => self.intern_node(Node::Min(a, b)),
        }
    }

    fn fold_max(&mut self, a: IdxId, b: IdxId) -> IdxId {
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.lift(x.max(y)),
            (Some(Extended::Infinity), _) | (_, Some(Extended::Infinity)) => {
                self.intern_node(Node::Infty)
            }
            (Some(x), None) if x.is_zero() => b,
            (None, Some(y)) if y.is_zero() => a,
            _ => self.intern_node(Node::Max(a, b)),
        }
    }

    /// Evaluates an interned term under `env`, with the exact semantics of
    /// [`Idx::eval`] (including its error cases).
    ///
    /// Part of the pool's public API for callers that keep terms interned;
    /// the solver's production numeric path does not use it — grid
    /// evaluation goes through the bytecode layer (`rel-constraint`'s
    /// `compile` module), and the tree fallback deliberately stays on
    /// [`Idx::eval`] as the unpooled reference.  The unit tests below pin
    /// this implementation to [`Idx::eval`].
    pub fn eval(&self, id: IdxId, env: &IdxEnv) -> Result<Extended, EvalError> {
        match self.node(id) {
            Node::Var(v) => env
                .lookup(v)
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Node::Const(q) => Ok(Extended::Finite(*q)),
            Node::Infty => Ok(Extended::Infinity),
            Node::Add(a, b) => Ok(self.eval(*a, env)? + self.eval(*b, env)?),
            Node::Sub(a, b) => Ok(self.eval(*a, env)? - self.eval(*b, env)?),
            Node::Mul(a, b) => Ok(self.eval(*a, env)? * self.eval(*b, env)?),
            Node::Div(a, b) => Ok(self.eval(*a, env)? / self.eval(*b, env)?),
            Node::Ceil(a) => Ok(self.eval(*a, env)?.ceil()),
            Node::Floor(a) => Ok(self.eval(*a, env)?.floor()),
            Node::Min(a, b) => Ok(self.eval(*a, env)?.min(self.eval(*b, env)?)),
            Node::Max(a, b) => Ok(self.eval(*a, env)?.max(self.eval(*b, env)?)),
            Node::Log2(a) => Ok(self.eval(*a, env)?.log2_total()),
            Node::Pow2(a) => Ok(self.eval(*a, env)?.pow2_total()),
            Node::Sum { var, lo, hi, body } => {
                // Mirrors the tree evaluator's bounded iteration and guards
                // (`MAX_SUM_TERMS` in `crate::eval`), evaluating the interned
                // body directly instead of rebuilding a tree.
                let lo = self.eval(*lo, env)?;
                let hi = self.eval(*hi, env)?;
                let (lo, hi) = match (lo.finite(), hi.finite()) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return Err(EvalError::InfiniteSumBound),
                };
                let lo = lo.ceil().numerator();
                let hi = hi.floor().numerator();
                if hi < lo {
                    return Ok(Extended::ZERO);
                }
                let count = (hi - lo + 1) as u64;
                if count > crate::eval::MAX_SUM_TERMS {
                    return Err(EvalError::SumRangeTooLarge(count));
                }
                let mut acc = Extended::ZERO;
                let mut inner = env.clone();
                for k in lo..=hi {
                    inner.bind(var.clone(), Extended::from(k));
                    acc = acc + self.eval(*body, &inner)?;
                }
                Ok(acc)
            }
        }
    }
}

/// Node-count cap for the shared per-thread pool used by
/// [`normalize_cached`]; when interning grows past it the pool is dropped
/// wholesale (epoch eviction, same policy as the validity cache).
const THREAD_POOL_MAX_NODES: usize = 1 << 20;

thread_local! {
    static THREAD_POOL: std::cell::RefCell<IdxPool> = std::cell::RefCell::new(IdxPool::new());
}

/// Normalizes through the calling thread's shared pool: repeated
/// normalization of the same (sub-)terms — the common case in the solver,
/// which re-simplifies goals at every decomposition level — reduces to memo
/// lookups instead of tree rebuilds.  Produces exactly the same term as the
/// tree-walking [`crate::normalize::normalize_tree`].
pub fn normalize_cached(idx: &Idx) -> Idx {
    THREAD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() > THREAD_POOL_MAX_NODES {
            *pool = IdxPool::new();
        }
        let id = pool.intern(idx);
        let normed = pool.normalize(id);
        pool.to_idx(normed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_tree;
    use proptest::prelude::*;

    #[test]
    fn interning_deduplicates_structurally_equal_terms() {
        let mut pool = IdxPool::new();
        let a = Idx::var("n") + Idx::nat(1);
        let b = Idx::var("n") + Idx::nat(1);
        assert_eq!(pool.intern(&a), pool.intern(&b));
        // n, 1, n + 1 — three distinct nodes in total.
        assert_eq!(pool.len(), 3);
        let c = Idx::var("n") + Idx::nat(2);
        assert_ne!(pool.intern(&a), pool.intern(&c));
    }

    #[test]
    fn shared_subterms_are_stored_once() {
        let mut pool = IdxPool::new();
        let sub = Idx::half_ceil(Idx::var("n"));
        let t = sub.clone() + sub.clone() * sub.clone();
        pool.intern(&t);
        // ceil(n/2) appears three times but the arena holds it once:
        // n, 2, n/2, ceil(n/2), mul, add.
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn round_trip_preserves_terms() {
        let mut pool = IdxPool::new();
        let t = Idx::sum(
            "i",
            Idx::zero(),
            Idx::log2(Idx::var("n")),
            Idx::pow2(Idx::var("i")) - Idx::min(Idx::var("a"), Idx::var("i")),
        );
        let id = pool.intern(&t);
        assert_eq!(pool.to_idx(id), t);
    }

    #[test]
    fn free_vars_are_cached_and_respect_binders() {
        let mut pool = IdxPool::new();
        let t = Idx::sum(
            "i",
            Idx::zero(),
            Idx::var("h"),
            Idx::var("i") * Idx::var("a"),
        );
        let id = pool.intern(&t);
        let fv = pool.free_vars(id);
        assert!(fv.contains(&IdxVar::new("h")));
        assert!(fv.contains(&IdxVar::new("a")));
        assert!(!fv.contains(&IdxVar::new("i")));
        assert_eq!(**pool.free_vars(id), t.free_vars());
    }

    #[test]
    fn pool_eval_matches_tree_eval() {
        let mut pool = IdxPool::new();
        let t = Idx::sum(
            "i",
            Idx::zero(),
            Idx::var("n"),
            Idx::pow2(Idx::var("i")) + Idx::var("a"),
        ) / Idx::nat(3);
        let id = pool.intern(&t);
        let env = IdxEnv::from_pairs([("n", Extended::from(4)), ("a", Extended::from(1))]);
        assert_eq!(pool.eval(id, &env), t.eval(&env));
        assert_eq!(
            pool.eval(id, &IdxEnv::new()),
            Err(EvalError::UnboundVariable(IdxVar::new("n")))
        );
    }

    #[test]
    fn normalize_cached_matches_tree_normalize() {
        let t = (Idx::nat(1) + Idx::nat(2)) * Idx::var("n") + Idx::zero() * Idx::var("a");
        assert_eq!(normalize_cached(&t), normalize_tree(&t));
    }

    fn arb_idx() -> impl Strategy<Value = Idx> {
        let leaf = prop_oneof![
            (0u64..6).prop_map(Idx::nat),
            Just(Idx::infty()),
            Just(Idx::var("n")),
            Just(Idx::var("a")),
            Just(Idx::var("b")),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::min(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::max(a, b)),
                inner.clone().prop_map(Idx::ceil),
                inner.clone().prop_map(Idx::floor),
                inner.clone().prop_map(Idx::log2),
                inner
                    .clone()
                    .prop_map(|a| Idx::pow2(Idx::min(a, Idx::nat(5)))),
                // Σ exercises the binder paths: free-var filtering, the
                // normalize memo across shared subterms, and shadowing (the
                // bound `n` shadows the free variable of the same name).
                (inner.clone(), inner.clone()).prop_map(|(hi, body)| Idx::sum(
                    "n",
                    Idx::zero(),
                    hi,
                    body
                )),
            ]
        })
    }

    proptest! {
        #[test]
        fn pool_normalize_agrees_with_tree_normalize(idx in arb_idx()) {
            let mut pool = IdxPool::new();
            let id = pool.intern(&idx);
            let normed = pool.normalize(id);
            prop_assert_eq!(pool.to_idx(normed), normalize_tree(&idx));
            // And again through the shared thread-local pool (memoized path).
            prop_assert_eq!(normalize_cached(&idx), normalize_tree(&idx));
        }

        #[test]
        fn pool_free_vars_agree_with_tree_free_vars(idx in arb_idx()) {
            let mut pool = IdxPool::new();
            let id = pool.intern(&idx);
            prop_assert_eq!((**pool.free_vars(id)).clone(), idx.free_vars());
        }
    }
}
