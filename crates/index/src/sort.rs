//! Index sorts.
//!
//! RelRef/RelCost index terms are classified by two sorts: `ℕ` for sizes and
//! difference counts, and `ℝ` (more precisely non-negative reals, written
//! `real` in the paper) for costs.

use std::fmt;

/// The sort of an index variable or index term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Sort {
    /// Natural numbers: list sizes `n` and difference counts `α`.
    #[default]
    Nat,
    /// Non-negative reals: execution costs `t`, `k`.
    Real,
}

impl Sort {
    /// Returns `true` if a value of sort `self` can be used where a value of
    /// sort `other` is expected (`ℕ ⊆ ℝ`).
    pub fn subsumed_by(self, other: Sort) -> bool {
        match (self, other) {
            (Sort::Nat, _) => true,
            (Sort::Real, Sort::Real) => true,
            (Sort::Real, Sort::Nat) => false,
        }
    }

    /// The least upper bound of two sorts.
    pub fn join(self, other: Sort) -> Sort {
        if self == Sort::Real || other == Sort::Real {
            Sort::Real
        } else {
            Sort::Nat
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Nat => write!(f, "nat"),
            Sort::Real => write!(f, "real"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_is_subsumed_by_real() {
        assert!(Sort::Nat.subsumed_by(Sort::Real));
        assert!(Sort::Nat.subsumed_by(Sort::Nat));
        assert!(Sort::Real.subsumed_by(Sort::Real));
        assert!(!Sort::Real.subsumed_by(Sort::Nat));
    }

    #[test]
    fn join_is_commutative_and_absorbs_real() {
        assert_eq!(Sort::Nat.join(Sort::Nat), Sort::Nat);
        assert_eq!(Sort::Nat.join(Sort::Real), Sort::Real);
        assert_eq!(Sort::Real.join(Sort::Nat), Sort::Real);
        assert_eq!(Sort::Real.join(Sort::Real), Sort::Real);
    }

    #[test]
    fn display_names() {
        assert_eq!(Sort::Nat.to_string(), "nat");
        assert_eq!(Sort::Real.to_string(), "real");
    }
}
