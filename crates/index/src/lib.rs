//! Index-term algebra for the BiRelCost relational type checker.
//!
//! Relational refinement types in RelRef/RelCost are indexed by *index terms*
//! (the grammar `I, n, α, t` of the paper): natural numbers describing list
//! lengths and element-wise differences, and real numbers describing execution
//! costs.  Index terms are built from variables, literals and the arithmetic
//! operations used throughout the paper's examples:
//!
//! ```text
//! I ::= i | 0 | I + 1 | I1 + I2 | I1 - I2 | I1 / I2 | I1 * I2
//!     | ⌈I⌉ | ⌊I⌋ | min(I1, I2) | max(I1, I2) | log2 I | 2^I | Σ_{i=I1}^{I2} I
//! ```
//!
//! This crate provides:
//!
//! * [`Rational`] — exact rational arithmetic (no floating-point drift in the
//!   constraint solver),
//! * [`Extended`] — rationals extended with `+∞` (used for the trivial cost
//!   bound that embeds RelRef/RelRefU into RelCost),
//! * [`Sort`] — the two index sorts `ℕ` and `ℝ`,
//! * [`IdxVar`] / [`IdxVarGen`] — index variables and fresh-name generation,
//! * [`Idx`] — the index-term AST with substitution and free-variable support,
//! * [`IdxEnv`] / evaluation — numeric evaluation of index terms,
//! * [`normalize`] — symbolic simplification (constant folding, unit laws),
//! * [`LinExpr`] — linear normal forms over opaque atoms, the workhorse of the
//!   constraint solver's symbolic layer.
//!
//! # Example
//!
//! ```
//! use rel_index::{Idx, IdxEnv, Extended};
//!
//! // Q(n, α)-style expression:  n + 2 * min(α, 4)
//! let i = Idx::var("n") + Idx::nat(2) * Idx::min(Idx::var("alpha"), Idx::nat(4));
//! let mut env = IdxEnv::new();
//! env.bind("n", Extended::from(10));
//! env.bind("alpha", Extended::from(7));
//! assert_eq!(i.eval(&env).unwrap(), Extended::from(18));
//! ```

pub mod eval;
pub mod linear;
pub mod normalize;
pub mod pool;
pub mod rational;
pub mod sort;
pub mod term;
pub mod var;

pub use eval::{EvalError, IdxEnv, MAX_SUM_TERMS};
pub use linear::{Atom, LinExpr};
pub use normalize::{normalize, normalize_tree};
pub use pool::{IdxId, IdxPool};
pub use rational::{Extended, Rational};
pub use sort::Sort;
pub use term::Idx;
pub use var::{IdxVar, IdxVarGen};
