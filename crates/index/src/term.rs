//! The index-term AST.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::rational::{Extended, Rational};
use crate::var::IdxVar;

/// An index term `I` of the paper: the static-level arithmetic language in
/// which list sizes `n`, difference bounds `α` and costs `t` are expressed.
///
/// ```text
/// I, n, α, t ::= i | q | ∞ | I + I | I - I | I * I | I / I
///              | ⌈I⌉ | ⌊I⌋ | min(I, I) | max(I, I) | log2 I | 2^I
///              | Σ_{i = I}^{I} I
/// ```
///
/// Construction goes through the helper constructors ([`Idx::var`],
/// [`Idx::nat`], [`Idx::min`], …) or the overloaded arithmetic operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Idx {
    /// An index variable.
    Var(IdxVar),
    /// A rational literal (naturals are integer-valued rationals).
    Const(Rational),
    /// Positive infinity (the trivial cost bound).
    Infty,
    /// Addition `I1 + I2`.
    Add(Box<Idx>, Box<Idx>),
    /// Subtraction `I1 - I2`.
    Sub(Box<Idx>, Box<Idx>),
    /// Multiplication `I1 · I2`.
    Mul(Box<Idx>, Box<Idx>),
    /// Division `I1 / I2`.
    Div(Box<Idx>, Box<Idx>),
    /// Ceiling `⌈I⌉`.
    Ceil(Box<Idx>),
    /// Floor `⌊I⌋`.
    Floor(Box<Idx>),
    /// Binary minimum `min(I1, I2)`.
    Min(Box<Idx>, Box<Idx>),
    /// Binary maximum `max(I1, I2)`.
    Max(Box<Idx>, Box<Idx>),
    /// Base-2 logarithm `log2 I` (totalized as `log2(max(I, 1))`).
    Log2(Box<Idx>),
    /// Power of two `2^I`.
    Pow2(Box<Idx>),
    /// Bounded iterated sum `Σ_{var = lo}^{hi} body` (inclusive bounds), used
    /// by divide-and-conquer cost recurrences such as `Q(n, α)` for merge sort.
    Sum {
        /// The bound summation variable.
        var: IdxVar,
        /// Lower bound (inclusive).
        lo: Box<Idx>,
        /// Upper bound (inclusive).
        hi: Box<Idx>,
        /// Summand, may mention `var`.
        body: Box<Idx>,
    },
}

impl Idx {
    /// An index variable.
    pub fn var(name: impl Into<IdxVar>) -> Idx {
        Idx::Var(name.into())
    }

    /// A natural-number literal.
    pub fn nat(n: u64) -> Idx {
        Idx::Const(Rational::from(n))
    }

    /// A rational literal.
    pub fn rat(num: i64, den: i64) -> Idx {
        Idx::Const(Rational::new(num, den))
    }

    /// The literal zero.
    pub fn zero() -> Idx {
        Idx::Const(Rational::ZERO)
    }

    /// The literal one.
    pub fn one() -> Idx {
        Idx::Const(Rational::ONE)
    }

    /// Positive infinity.
    pub fn infty() -> Idx {
        Idx::Infty
    }

    /// `min(a, b)`.
    pub fn min(a: Idx, b: Idx) -> Idx {
        Idx::Min(Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: Idx, b: Idx) -> Idx {
        Idx::Max(Box::new(a), Box::new(b))
    }

    /// `⌈a⌉`.
    pub fn ceil(a: Idx) -> Idx {
        Idx::Ceil(Box::new(a))
    }

    /// `⌊a⌋`.
    pub fn floor(a: Idx) -> Idx {
        Idx::Floor(Box::new(a))
    }

    /// `log2 a`.
    pub fn log2(a: Idx) -> Idx {
        Idx::Log2(Box::new(a))
    }

    /// `2^a`.
    pub fn pow2(a: Idx) -> Idx {
        Idx::Pow2(Box::new(a))
    }

    /// `Σ_{var = lo}^{hi} body`.
    pub fn sum(var: impl Into<IdxVar>, lo: Idx, hi: Idx, body: Idx) -> Idx {
        Idx::Sum {
            var: var.into(),
            lo: Box::new(lo),
            hi: Box::new(hi),
            body: Box::new(body),
        }
    }

    /// `⌈a / 2⌉` — pervasive in divide-and-conquer refinements.
    pub fn half_ceil(a: Idx) -> Idx {
        Idx::ceil(a / Idx::nat(2))
    }

    /// `⌊a / 2⌋`.
    pub fn half_floor(a: Idx) -> Idx {
        Idx::floor(a / Idx::nat(2))
    }

    /// Returns `Some(q)` if the term is a literal constant.
    pub fn as_const(&self) -> Option<Extended> {
        match self {
            Idx::Const(q) => Some(Extended::Finite(*q)),
            Idx::Infty => Some(Extended::Infinity),
            _ => None,
        }
    }

    /// Returns `true` if the term is the literal `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Idx::Const(q) if q.is_zero())
    }

    /// Returns `true` if the term is syntactically `∞`.
    pub fn is_infty(&self) -> bool {
        matches!(self, Idx::Infty)
    }

    /// The set of free index variables.
    pub fn free_vars(&self) -> BTreeSet<IdxVar> {
        let mut acc = BTreeSet::new();
        self.collect_free_vars(&mut acc);
        acc
    }

    fn collect_free_vars(&self, acc: &mut BTreeSet<IdxVar>) {
        match self {
            Idx::Var(v) => {
                acc.insert(v.clone());
            }
            Idx::Const(_) | Idx::Infty => {}
            Idx::Add(a, b)
            | Idx::Sub(a, b)
            | Idx::Mul(a, b)
            | Idx::Div(a, b)
            | Idx::Min(a, b)
            | Idx::Max(a, b) => {
                a.collect_free_vars(acc);
                b.collect_free_vars(acc);
            }
            Idx::Ceil(a) | Idx::Floor(a) | Idx::Log2(a) | Idx::Pow2(a) => a.collect_free_vars(acc),
            Idx::Sum { var, lo, hi, body } => {
                lo.collect_free_vars(acc);
                hi.collect_free_vars(acc);
                let mut inner = BTreeSet::new();
                body.collect_free_vars(&mut inner);
                inner.remove(var);
                acc.extend(inner);
            }
        }
    }

    /// Returns `true` if `v` occurs free in the term.
    pub fn mentions(&self, v: &IdxVar) -> bool {
        match self {
            Idx::Var(w) => w == v,
            Idx::Const(_) | Idx::Infty => false,
            Idx::Add(a, b)
            | Idx::Sub(a, b)
            | Idx::Mul(a, b)
            | Idx::Div(a, b)
            | Idx::Min(a, b)
            | Idx::Max(a, b) => a.mentions(v) || b.mentions(v),
            Idx::Ceil(a) | Idx::Floor(a) | Idx::Log2(a) | Idx::Pow2(a) => a.mentions(v),
            Idx::Sum { var, lo, hi, body } => {
                lo.mentions(v) || hi.mentions(v) || (var != v && body.mentions(v))
            }
        }
    }

    /// Capture-avoiding substitution of `replacement` for `var`.
    ///
    /// Summation binders shadow the substituted variable; substitution under a
    /// binder whose bound variable occurs free in `replacement` renames the
    /// binder (the generated name is derived from the original).
    pub fn subst(&self, var: &IdxVar, replacement: &Idx) -> Idx {
        match self {
            Idx::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Idx::Const(_) | Idx::Infty => self.clone(),
            Idx::Add(a, b) => Idx::Add(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Sub(a, b) => Idx::Sub(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Mul(a, b) => Idx::Mul(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Div(a, b) => Idx::Div(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Min(a, b) => Idx::Min(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Max(a, b) => Idx::Max(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Idx::Ceil(a) => Idx::Ceil(Box::new(a.subst(var, replacement))),
            Idx::Floor(a) => Idx::Floor(Box::new(a.subst(var, replacement))),
            Idx::Log2(a) => Idx::Log2(Box::new(a.subst(var, replacement))),
            Idx::Pow2(a) => Idx::Pow2(Box::new(a.subst(var, replacement))),
            Idx::Sum {
                var: b,
                lo,
                hi,
                body,
            } => {
                let lo = lo.subst(var, replacement);
                let hi = hi.subst(var, replacement);
                if b == var {
                    // Bound occurrence shadows the substitution.
                    Idx::Sum {
                        var: b.clone(),
                        lo: Box::new(lo),
                        hi: Box::new(hi),
                        body: body.clone(),
                    }
                } else if replacement.mentions(b) {
                    // Rename the binder to avoid capture.
                    let fresh = IdxVar::new(format!("{}'", b.name()));
                    let renamed_body = body.subst(b, &Idx::Var(fresh.clone()));
                    Idx::Sum {
                        var: fresh,
                        lo: Box::new(lo),
                        hi: Box::new(hi),
                        body: Box::new(renamed_body.subst(var, replacement)),
                    }
                } else {
                    Idx::Sum {
                        var: b.clone(),
                        lo: Box::new(lo),
                        hi: Box::new(hi),
                        body: Box::new(body.subst(var, replacement)),
                    }
                }
            }
        }
    }

    /// Simultaneous substitution given by a map from variables to terms, in
    /// **one traversal** (the sequential fold over [`Idx::subst`] cloned the
    /// whole tree once per variable).
    ///
    /// Requires that no replacement mentions a substituted variable (the
    /// form produced by the solver's existential elimination, which resolves
    /// mutual references first); under that precondition simultaneous and
    /// sequential application agree, which is also how the rare
    /// binder-capture case is handled.  Callers substituting into many
    /// terms with one map should validate the map once themselves (see
    /// [`crate::pool`]-level callers such as `Constr::subst_all`) — this
    /// entry point does not re-check it.
    pub fn subst_all(&self, map: &BTreeMap<IdxVar, Idx>) -> Idx {
        if map.is_empty() {
            return self.clone();
        }
        self.subst_all_inner(map)
    }

    fn subst_all_inner(&self, map: &BTreeMap<IdxVar, Idx>) -> Idx {
        match self {
            Idx::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Idx::Const(_) | Idx::Infty => self.clone(),
            Idx::Add(a, b) => Idx::Add(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Sub(a, b) => Idx::Sub(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Mul(a, b) => Idx::Mul(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Div(a, b) => Idx::Div(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Min(a, b) => Idx::Min(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Max(a, b) => Idx::Max(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Idx::Ceil(a) => Idx::Ceil(Box::new(a.subst_all_inner(map))),
            Idx::Floor(a) => Idx::Floor(Box::new(a.subst_all_inner(map))),
            Idx::Log2(a) => Idx::Log2(Box::new(a.subst_all_inner(map))),
            Idx::Pow2(a) => Idx::Pow2(Box::new(a.subst_all_inner(map))),
            Idx::Sum { var, .. } => {
                if map.contains_key(var) || map.values().any(|r| r.mentions(var)) {
                    // Shadowing or capture risk at this binder: fall back to
                    // the capture-avoiding single substitution, pairwise
                    // (equivalent under the documented precondition).
                    map.iter().fold(self.clone(), |acc, (v, i)| acc.subst(v, i))
                } else if let Idx::Sum { var, lo, hi, body } = self {
                    Idx::Sum {
                        var: var.clone(),
                        lo: Box::new(lo.subst_all_inner(map)),
                        hi: Box::new(hi.subst_all_inner(map)),
                        body: Box::new(body.subst_all_inner(map)),
                    }
                } else {
                    unreachable!()
                }
            }
        }
    }

    /// Number of AST nodes — used for diagnostics and as a proptest size hint.
    pub fn size(&self) -> usize {
        match self {
            Idx::Var(_) | Idx::Const(_) | Idx::Infty => 1,
            Idx::Add(a, b)
            | Idx::Sub(a, b)
            | Idx::Mul(a, b)
            | Idx::Div(a, b)
            | Idx::Min(a, b)
            | Idx::Max(a, b) => 1 + a.size() + b.size(),
            Idx::Ceil(a) | Idx::Floor(a) | Idx::Log2(a) | Idx::Pow2(a) => 1 + a.size(),
            Idx::Sum { lo, hi, body, .. } => 1 + lo.size() + hi.size() + body.size(),
        }
    }
}

impl Add for Idx {
    type Output = Idx;
    fn add(self, rhs: Idx) -> Idx {
        Idx::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for Idx {
    type Output = Idx;
    fn sub(self, rhs: Idx) -> Idx {
        Idx::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for Idx {
    type Output = Idx;
    fn mul(self, rhs: Idx) -> Idx {
        Idx::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Div for Idx {
    type Output = Idx;
    fn div(self, rhs: Idx) -> Idx {
        Idx::Div(Box::new(self), Box::new(rhs))
    }
}

impl From<u64> for Idx {
    fn from(n: u64) -> Self {
        Idx::nat(n)
    }
}

impl From<IdxVar> for Idx {
    fn from(v: IdxVar) -> Self {
        Idx::Var(v)
    }
}

impl fmt::Display for Idx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Idx::Var(v) => write!(f, "{v}"),
            Idx::Const(q) => write!(f, "{q}"),
            Idx::Infty => write!(f, "inf"),
            Idx::Add(a, b) => write!(f, "({a} + {b})"),
            Idx::Sub(a, b) => write!(f, "({a} - {b})"),
            Idx::Mul(a, b) => write!(f, "({a} * {b})"),
            Idx::Div(a, b) => write!(f, "({a} / {b})"),
            Idx::Ceil(a) => write!(f, "ceil({a})"),
            Idx::Floor(a) => write!(f, "floor({a})"),
            Idx::Min(a, b) => write!(f, "min({a}, {b})"),
            Idx::Max(a, b) => write!(f, "max({a}, {b})"),
            Idx::Log2(a) => write!(f, "log2({a})"),
            Idx::Pow2(a) => write!(f, "pow2({a})"),
            Idx::Sum { var, lo, hi, body } => {
                write!(f, "sum({var} = {lo} to {hi}, {body})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_operators_build_the_expected_tree() {
        let i = Idx::var("n") + Idx::nat(1);
        assert_eq!(
            i,
            Idx::Add(Box::new(Idx::Var(IdxVar::new("n"))), Box::new(Idx::nat(1)))
        );
        assert_eq!(i.size(), 3);
    }

    #[test]
    fn free_vars_ignores_bound_summation_variable() {
        let s = Idx::sum(
            "i",
            Idx::zero(),
            Idx::var("h"),
            Idx::var("i") * Idx::var("alpha"),
        );
        let fv = s.free_vars();
        assert!(fv.contains(&IdxVar::new("h")));
        assert!(fv.contains(&IdxVar::new("alpha")));
        assert!(!fv.contains(&IdxVar::new("i")));
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let s = Idx::sum(
            "i",
            Idx::zero(),
            Idx::var("n"),
            Idx::var("i") + Idx::var("n"),
        );
        let replaced = s.subst(&IdxVar::new("n"), &Idx::nat(5));
        match replaced {
            Idx::Sum { hi, body, .. } => {
                assert_eq!(*hi, Idx::nat(5));
                assert_eq!(*body, Idx::var("i") + Idx::nat(5));
            }
            other => panic!("expected a sum, got {other:?}"),
        }
    }

    #[test]
    fn subst_shadowed_binder_is_untouched() {
        let s = Idx::sum("i", Idx::zero(), Idx::nat(3), Idx::var("i"));
        let replaced = s.subst(&IdxVar::new("i"), &Idx::nat(99));
        assert_eq!(replaced, s);
    }

    #[test]
    fn subst_avoids_capture_by_renaming() {
        // substituting  n := i  under a binder for i must not capture.
        let s = Idx::sum("i", Idx::zero(), Idx::nat(3), Idx::var("n"));
        let replaced = s.subst(&IdxVar::new("n"), &Idx::var("i"));
        match replaced {
            Idx::Sum { var, body, .. } => {
                assert_ne!(var, IdxVar::new("i"));
                assert_eq!(*body, Idx::var("i"));
            }
            other => panic!("expected a sum, got {other:?}"),
        }
    }

    #[test]
    fn mentions_agrees_with_free_vars() {
        let i = Idx::min(Idx::var("a"), Idx::var("b")) - Idx::log2(Idx::var("c"));
        for v in ["a", "b", "c"] {
            assert!(i.mentions(&IdxVar::new(v)));
            assert!(i.free_vars().contains(&IdxVar::new(v)));
        }
        assert!(!i.mentions(&IdxVar::new("d")));
    }

    #[test]
    fn display_is_reasonable() {
        let i = Idx::half_ceil(Idx::var("n"));
        assert_eq!(i.to_string(), "ceil((n / 2))");
    }
}
