//! Numeric evaluation of index terms under an environment.
//!
//! Evaluation is used in two places: by the constraint solver's
//! bounded-numeric layer (to decide ground instances of universally
//! quantified constraints) and by the test suite (to compare typed cost
//! bounds against measured relative costs).

use std::collections::BTreeMap;
use std::fmt;

use crate::rational::Extended;
use crate::term::Idx;
use crate::var::IdxVar;

/// An assignment of numeric values to index variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdxEnv {
    bindings: BTreeMap<IdxVar, Extended>,
}

impl IdxEnv {
    /// An empty environment.
    pub fn new() -> IdxEnv {
        IdxEnv::default()
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, var: impl Into<IdxVar>, value: impl Into<Extended>) -> &mut Self {
        self.bindings.insert(var.into(), value.into());
        self
    }

    /// Returns the value bound to `var`, if any.
    pub fn lookup(&self, var: &IdxVar) -> Option<Extended> {
        self.bindings.get(var).copied()
    }

    /// Returns an iterator over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&IdxVar, &Extended)> {
        self.bindings.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Builds an environment from an iterator of pairs.
    pub fn from_pairs<V, E>(pairs: impl IntoIterator<Item = (V, E)>) -> IdxEnv
    where
        V: Into<IdxVar>,
        E: Into<Extended>,
    {
        let mut env = IdxEnv::new();
        for (v, e) in pairs {
            env.bind(v, e);
        }
        env
    }
}

/// Errors produced by index-term evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the environment.
    UnboundVariable(IdxVar),
    /// A summation's bounds were infinite.
    InfiniteSumBound,
    /// A summation range was too large to iterate (guards against runaway
    /// numeric checks; the solver keeps domains small).
    SumRangeTooLarge(u64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound index variable `{v}`"),
            EvalError::InfiniteSumBound => write!(f, "summation bound evaluated to infinity"),
            EvalError::SumRangeTooLarge(n) => {
                write!(
                    f,
                    "summation range of {n} terms exceeds the evaluation limit"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Upper bound on the number of terms a `Σ` may expand to during evaluation.
///
/// Public because every evaluator of index terms — this tree walker, the
/// pooled evaluator of [`crate::pool`], and downstream bytecode evaluators —
/// must agree on it exactly: evaluators are required to be verdict-identical
/// and diverging caps would silently break that.
pub const MAX_SUM_TERMS: u64 = 1_000_000;

impl Idx {
    /// Evaluates the index term under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVariable`] if a free variable is missing
    /// from the environment, and the summation errors documented on
    /// [`EvalError`].
    pub fn eval(&self, env: &IdxEnv) -> Result<Extended, EvalError> {
        match self {
            Idx::Var(v) => env
                .lookup(v)
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Idx::Const(q) => Ok(Extended::Finite(*q)),
            Idx::Infty => Ok(Extended::Infinity),
            Idx::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            Idx::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
            Idx::Mul(a, b) => Ok(a.eval(env)? * b.eval(env)?),
            Idx::Div(a, b) => Ok(a.eval(env)? / b.eval(env)?),
            Idx::Ceil(a) => Ok(a.eval(env)?.ceil()),
            Idx::Floor(a) => Ok(a.eval(env)?.floor()),
            Idx::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            Idx::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
            Idx::Log2(a) => Ok(a.eval(env)?.log2_total()),
            Idx::Pow2(a) => Ok(a.eval(env)?.pow2_total()),
            Idx::Sum { var, lo, hi, body } => {
                let lo = lo.eval(env)?;
                let hi = hi.eval(env)?;
                let (lo, hi) = match (lo.finite(), hi.finite()) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return Err(EvalError::InfiniteSumBound),
                };
                // Inclusive integer range from ceil(lo) to floor(hi).
                let lo = lo.ceil().numerator();
                let hi = hi.floor().numerator();
                if hi < lo {
                    return Ok(Extended::ZERO);
                }
                let count = (hi - lo + 1) as u64;
                if count > MAX_SUM_TERMS {
                    return Err(EvalError::SumRangeTooLarge(count));
                }
                let mut acc = Extended::ZERO;
                let mut inner = env.clone();
                for k in lo..=hi {
                    inner.bind(var.clone(), Extended::from(k));
                    acc = acc + body.eval(&inner)?;
                }
                Ok(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    fn env(pairs: &[(&str, i64)]) -> IdxEnv {
        IdxEnv::from_pairs(pairs.iter().map(|(v, n)| (*v, Extended::from(*n))))
    }

    #[test]
    fn arithmetic_evaluation() {
        let e = env(&[("n", 10), ("a", 3)]);
        let i = (Idx::var("n") - Idx::var("a")) * Idx::nat(2);
        assert_eq!(i.eval(&e).unwrap(), Extended::from(14));
    }

    #[test]
    fn ceil_floor_and_halves() {
        let e = env(&[("n", 7)]);
        assert_eq!(
            Idx::half_ceil(Idx::var("n")).eval(&e).unwrap(),
            Extended::from(4)
        );
        assert_eq!(
            Idx::half_floor(Idx::var("n")).eval(&e).unwrap(),
            Extended::from(3)
        );
    }

    #[test]
    fn min_max_log_pow() {
        let e = env(&[("a", 5), ("b", 9)]);
        assert_eq!(
            Idx::min(Idx::var("a"), Idx::var("b")).eval(&e).unwrap(),
            Extended::from(5)
        );
        assert_eq!(
            Idx::max(Idx::var("a"), Idx::var("b")).eval(&e).unwrap(),
            Extended::from(9)
        );
        assert_eq!(Idx::pow2(Idx::nat(5)).eval(&e).unwrap(), Extended::from(32));
        assert_eq!(Idx::log2(Idx::nat(32)).eval(&e).unwrap(), Extended::from(5));
        // log2 is totalized at 0.
        assert_eq!(Idx::log2(Idx::nat(0)).eval(&e).unwrap(), Extended::from(0));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = IdxEnv::new();
        assert_eq!(
            Idx::var("missing").eval(&e),
            Err(EvalError::UnboundVariable(IdxVar::new("missing")))
        );
    }

    #[test]
    fn summation_evaluates_inclusively_and_empty_ranges_are_zero() {
        let e = env(&[("n", 4)]);
        // Σ_{i=0}^{4} i = 10
        let s = Idx::sum("i", Idx::zero(), Idx::var("n"), Idx::var("i"));
        assert_eq!(s.eval(&e).unwrap(), Extended::from(10));
        // Empty range.
        let s = Idx::sum("i", Idx::nat(3), Idx::nat(2), Idx::var("i"));
        assert_eq!(s.eval(&e).unwrap(), Extended::ZERO);
    }

    #[test]
    fn merge_sort_recurrence_shape_evaluates() {
        // Q(n, α) = Σ_{i=0}^{H} ceil(2^i / 2) * min(α, 2^(H - i)), H = ceil(log2 n).
        let h = Idx::ceil(Idx::log2(Idx::var("n")));
        let q = Idx::sum(
            "i",
            Idx::zero(),
            h.clone(),
            Idx::ceil(Idx::pow2(Idx::var("i")) / Idx::nat(2))
                * Idx::min(Idx::var("alpha"), Idx::pow2(h.clone() - Idx::var("i"))),
        );
        let e = env(&[("n", 8), ("alpha", 2)]);
        // H = 3; terms: i=0: ceil(1/2)*min(2,8)=1*2=2 ; i=1: 1*2=2 ; i=2: 2*2=4 ; i=3: 4*1=4 → 12
        assert_eq!(q.eval(&e).unwrap(), Extended::from(12));
    }

    #[test]
    fn division_by_zero_is_unbounded() {
        let e = IdxEnv::new();
        assert_eq!(
            (Idx::nat(1) / Idx::zero()).eval(&e).unwrap(),
            Extended::Infinity
        );
    }

    #[test]
    fn rational_results_are_exact() {
        let e = IdxEnv::new();
        let i = Idx::nat(1) / Idx::nat(3) + Idx::nat(2) / Idx::nat(3);
        assert_eq!(i.eval(&e).unwrap(), Extended::Finite(Rational::ONE));
    }
}
