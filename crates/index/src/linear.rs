//! Linear normal forms for index terms.
//!
//! The symbolic layer of the constraint solver decides the (large) fragment
//! of constraints that are linear inequalities over *atoms* — where an atom
//! is either an index variable or an opaque non-linear subterm such as
//! `⌈n/2⌉`, `min(α, 2^i)` or a whole `Σ`.  A [`LinExpr`] is a constant plus a
//! linear combination of atoms with rational coefficients; two constraints
//! whose difference normalizes to a known-sign constant can then be decided
//! without any numeric search.

use std::collections::BTreeMap;
use std::fmt;

use crate::normalize::normalize;
use crate::rational::{Extended, Rational};
use crate::term::Idx;

/// An opaque atom of a linear expression: any index term that is not itself a
/// sum, difference, constant multiple or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(pub Idx);

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A linear expression `c + Σ qᵢ · atomᵢ`, possibly with an infinite constant.
///
/// The decomposition is *exact*: converting an [`Idx`] to a `LinExpr` and
/// reading it back denotes the same function of the free variables (checked
/// by property tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// The additive constant.
    pub constant: Extended,
    /// Coefficients of the atoms; zero coefficients are never stored.
    pub coeffs: BTreeMap<Atom, Rational>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr {
            constant: Extended::ZERO,
            coeffs: BTreeMap::new(),
        }
    }

    /// A constant expression.
    pub fn constant(c: Extended) -> LinExpr {
        LinExpr {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient one.
    pub fn atom(a: Atom) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(a, Rational::ONE);
        LinExpr {
            constant: Extended::ZERO,
            coeffs,
        }
    }

    /// Converts an index term into linear normal form.
    ///
    /// Non-linear structure (products of non-constants, `min`, `max`, `⌈·⌉`,
    /// `Σ`, …) is kept as opaque atoms whose *children* have been normalized,
    /// so equal non-linear subterms are shared as the same atom.
    pub fn of_idx(idx: &Idx) -> LinExpr {
        Self::of_normalized(&normalize(idx))
    }

    fn of_normalized(idx: &Idx) -> LinExpr {
        match idx {
            Idx::Const(q) => LinExpr::constant(Extended::Finite(*q)),
            Idx::Infty => LinExpr::constant(Extended::Infinity),
            Idx::Add(a, b) => Self::of_normalized(a).add(&Self::of_normalized(b)),
            Idx::Sub(a, b) => Self::of_normalized(a).sub(&Self::of_normalized(b)),
            Idx::Mul(a, b) => {
                let la = Self::of_normalized(a);
                let lb = Self::of_normalized(b);
                if let Some(q) = la.as_finite_constant() {
                    lb.scale(q)
                } else if let Some(q) = lb.as_finite_constant() {
                    la.scale(q)
                } else if let Some((atom, q)) = la.single_scaled_atom() {
                    // Distribute an atomic factor over a linear combination:
                    // `t · (β + 1)` and `t · β + t` must decompose to the
                    // *same* atoms, or the linear layers cannot relate a cost
                    // bound to its unrolling (the `map` benchmark's
                    // obligations are exactly this shape).
                    Self::distribute(&atom, &lb, true)
                        .map(|d| d.scale(q))
                        .unwrap_or_else(|| LinExpr::atom(Atom(idx.clone())))
                } else if let Some((atom, q)) = lb.single_scaled_atom() {
                    Self::distribute(&atom, &la, false)
                        .map(|d| d.scale(q))
                        .unwrap_or_else(|| LinExpr::atom(Atom(idx.clone())))
                } else {
                    LinExpr::atom(Atom(idx.clone()))
                }
            }
            Idx::Div(a, b) => {
                let lb = Self::of_normalized(b);
                match lb.as_finite_constant() {
                    Some(q) if !q.is_zero() => Self::of_normalized(a).scale(q.recip()),
                    _ => LinExpr::atom(Atom(idx.clone())),
                }
            }
            // Everything else is an opaque atom.
            Idx::Var(_)
            | Idx::Ceil(_)
            | Idx::Floor(_)
            | Idx::Min(_, _)
            | Idx::Max(_, _)
            | Idx::Log2(_)
            | Idx::Pow2(_)
            | Idx::Sum { .. } => LinExpr::atom(Atom(idx.clone())),
        }
    }

    /// Returns the expression's sole atom and its coefficient when it is
    /// `q · atom` with no constant part.
    fn single_scaled_atom(&self) -> Option<(Atom, Rational)> {
        if self.constant != Extended::ZERO || self.coeffs.len() != 1 {
            return None;
        }
        let (a, q) = self.coeffs.iter().next().expect("length checked");
        Some((a.clone(), *q))
    }

    /// `atom · lin` expanded term by term: each atom β of `lin` becomes the
    /// product atom `atom · β` (normalized, factor order preserved so the
    /// expansion unifies with source-level products), and the constant part
    /// becomes a multiple of `atom` itself.  `None` when the constant is
    /// `∞` (distribution over `∞` is not value-preserving for zero
    /// factors).
    fn distribute(atom: &Atom, lin: &LinExpr, atom_left: bool) -> Option<LinExpr> {
        let c = lin.constant.finite()?;
        let mut acc = LinExpr::constant(Extended::ZERO);
        for (b, q) in &lin.coeffs {
            let (x, y) = if atom_left {
                (atom.0.clone(), b.0.clone())
            } else {
                (b.0.clone(), atom.0.clone())
            };
            let prod = normalize(&Idx::Mul(Box::new(x), Box::new(y)));
            acc = acc.add(&LinExpr::atom(Atom(prod)).scale(*q));
        }
        if !c.is_zero() {
            acc = acc.add(&LinExpr::atom(atom.clone()).scale(c));
        }
        Some(acc)
    }

    /// Returns `Some(q)` if the expression is a finite constant.
    pub fn as_finite_constant(&self) -> Option<Rational> {
        if self.coeffs.is_empty() {
            self.constant.finite()
        } else {
            None
        }
    }

    /// Returns the constant if the expression has no atoms (may be `∞`).
    pub fn as_constant(&self) -> Option<Extended> {
        if self.coeffs.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut coeffs = self.coeffs.clone();
        for (a, q) in &other.coeffs {
            let entry = coeffs.entry(a.clone()).or_insert(Rational::ZERO);
            *entry = *entry + *q;
        }
        coeffs.retain(|_, q| !q.is_zero());
        LinExpr {
            constant: self.constant + other.constant,
            coeffs,
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(Rational::from_int(-1)))
    }

    /// `self + q · other` in one pass — the inner loop of Fourier–Motzkin
    /// elimination combines a positive- and a negative-bound row with one
    /// multiplier each, and going through `add(&other.scale(q))` would
    /// allocate the scaled map just to merge and drop it.
    pub fn add_scaled(&self, other: &LinExpr, q: Rational) -> LinExpr {
        if q.is_zero() {
            return self.clone();
        }
        let mut coeffs = self.coeffs.clone();
        for (a, c) in &other.coeffs {
            let entry = coeffs.entry(a.clone()).or_insert(Rational::ZERO);
            *entry = *entry + *c * q;
        }
        coeffs.retain(|_, c| !c.is_zero());
        let scaled = match other.constant {
            Extended::Finite(c) => Extended::Finite(c * q),
            // Mirror `scale`'s saturation rule for negative multiples of ∞.
            Extended::Infinity => {
                if q.is_negative() {
                    Extended::ZERO
                } else {
                    Extended::Infinity
                }
            }
        };
        LinExpr {
            constant: self.constant + scaled,
            coeffs,
        }
    }

    /// The coefficient of an atom (zero when absent).
    pub fn coeff(&self, atom: &Atom) -> Rational {
        self.coeffs.get(atom).copied().unwrap_or(Rational::ZERO)
    }

    /// Removes an atom, returning its previous coefficient (zero when
    /// absent) — variable elimination drops the pivot column this way.
    pub fn remove_atom(&mut self, atom: &Atom) -> Rational {
        self.coeffs.remove(atom).unwrap_or(Rational::ZERO)
    }

    /// Multiplication by a finite rational scalar.
    pub fn scale(&self, q: Rational) -> LinExpr {
        if q.is_zero() {
            return LinExpr::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .map(|(a, c)| (a.clone(), *c * q))
            .collect();
        let constant = match self.constant {
            Extended::Finite(c) => Extended::Finite(c * q),
            Extended::Infinity => {
                if q.is_negative() {
                    // -∞ is not representable; callers never scale infinite
                    // constants negatively (costs are non-negative), but keep
                    // the operation total by saturating at 0.
                    Extended::ZERO
                } else {
                    Extended::Infinity
                }
            }
        };
        LinExpr { constant, coeffs }
    }

    /// Converts the linear expression back into an index term.
    pub fn to_idx(&self) -> Idx {
        let mut acc = match self.constant {
            Extended::Finite(q) if q.is_zero() && !self.coeffs.is_empty() => None,
            Extended::Finite(q) => Some(Idx::Const(q)),
            Extended::Infinity => Some(Idx::Infty),
        };
        for (atom, coeff) in &self.coeffs {
            let term = if *coeff == Rational::ONE {
                atom.0.clone()
            } else {
                Idx::Const(*coeff) * atom.0.clone()
            };
            acc = Some(match acc {
                None => term,
                Some(prev) => prev + term,
            });
        }
        acc.unwrap_or_else(Idx::zero)
    }

    /// Returns `true` if every coefficient is non-negative and the constant is
    /// non-negative — a sufficient condition for the expression to be
    /// non-negative whenever all atoms are (which holds for the `ℕ`-sorted and
    /// cost-sorted atoms of RelCost).
    pub fn is_syntactically_nonneg(&self) -> bool {
        let const_ok = match self.constant {
            Extended::Finite(q) => !q.is_negative(),
            Extended::Infinity => true,
        };
        const_ok && self.coeffs.values().all(|q| !q.is_negative())
    }

    /// Iterates over the atoms of the expression.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        self.coeffs.keys()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_idx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::IdxEnv;
    use proptest::prelude::*;

    #[test]
    fn linear_decomposition_of_simple_terms() {
        // 2*n + 3 - n  =>  n + 3
        let idx = Idx::nat(2) * Idx::var("n") + Idx::nat(3) - Idx::var("n");
        let lin = LinExpr::of_idx(&idx);
        assert_eq!(lin.constant, Extended::from(3));
        assert_eq!(lin.coeffs.len(), 1);
        assert_eq!(
            lin.coeffs.get(&Atom(Idx::var("n"))).copied(),
            Some(Rational::ONE)
        );
    }

    #[test]
    fn cancellation_to_zero() {
        let idx = Idx::var("n") + Idx::var("a") - (Idx::var("a") + Idx::var("n"));
        let lin = LinExpr::of_idx(&idx);
        assert_eq!(lin, LinExpr::zero());
    }

    #[test]
    fn nonlinear_subterms_become_shared_atoms() {
        let idx = Idx::half_ceil(Idx::var("n")) + Idx::half_ceil(Idx::var("n"));
        let lin = LinExpr::of_idx(&idx);
        assert_eq!(lin.coeffs.len(), 1);
        let coeff = lin.coeffs.values().next().copied().unwrap();
        assert_eq!(coeff, Rational::from_int(2));
    }

    #[test]
    fn division_by_constant_scales() {
        let idx = (Idx::var("n") + Idx::nat(4)) / Idx::nat(2);
        let lin = LinExpr::of_idx(&idx);
        assert_eq!(lin.constant, Extended::from(2));
        assert_eq!(
            lin.coeffs.get(&Atom(Idx::var("n"))).copied(),
            Some(Rational::new(1, 2))
        );
    }

    #[test]
    fn nonneg_detection() {
        let yes = LinExpr::of_idx(&(Idx::var("n") + Idx::nat(1)));
        assert!(yes.is_syntactically_nonneg());
        let no = LinExpr::of_idx(&(Idx::zero() - Idx::var("n")));
        assert!(!no.is_syntactically_nonneg());
    }

    #[test]
    fn products_distribute_over_linear_combinations() {
        // t · (b + 1) and t·b + t decompose to the same atoms.
        let t = || Idx::var("t");
        let b = || Idx::var("b");
        let folded = LinExpr::of_idx(&(t() * (b() + Idx::one())));
        let unrolled = LinExpr::of_idx(&(t() * b() + t()));
        assert_eq!(folded, unrolled);
        assert_eq!(folded.sub(&unrolled), LinExpr::zero());
        // Factor order is preserved: (b + 1) · t expands to b·t + t.
        let swapped = LinExpr::of_idx(&((b() + Idx::one()) * t()));
        assert_eq!(swapped, LinExpr::of_idx(&(b() * t() + t())));
        // A scaled atomic factor distributes too: 2t · (b − 3) = 2·(t·b) − 6t.
        let scaled = LinExpr::of_idx(&(Idx::nat(2) * t() * (b() - Idx::nat(3))));
        assert_eq!(
            scaled,
            LinExpr::of_idx(&(Idx::nat(2) * (t() * b()) - Idx::nat(6) * t()))
        );
        // Value preservation at a few points.
        for (tv, bv) in [(0i64, 0i64), (3, 5), (7, 1)] {
            let env = IdxEnv::from_pairs([("t", Extended::from(tv)), ("b", Extended::from(bv))]);
            let direct = (t() * (b() + Idx::one())).eval(&env).unwrap();
            assert_eq!(folded.to_idx().eval(&env).unwrap(), direct);
        }
    }

    #[test]
    fn add_scaled_matches_add_of_scale() {
        let x = LinExpr::of_idx(&(Idx::var("n") + Idx::nat(3)));
        let y = LinExpr::of_idx(&(Idx::var("n") - Idx::var("a") + Idx::nat(1)));
        let q = Rational::new(-3, 2);
        assert_eq!(x.add_scaled(&y, q), x.add(&y.scale(q)));
        assert_eq!(x.add_scaled(&y, Rational::ZERO), x);
        assert_eq!(y.coeff(&Atom(Idx::var("a"))), Rational::from_int(-1));
        assert_eq!(y.coeff(&Atom(Idx::var("zzz"))), Rational::ZERO);
        let mut z = y.clone();
        assert_eq!(z.remove_atom(&Atom(Idx::var("a"))), Rational::from_int(-1));
        assert_eq!(z.remove_atom(&Atom(Idx::var("a"))), Rational::ZERO);
    }

    fn arb_idx() -> impl Strategy<Value = Idx> {
        let leaf = prop_oneof![
            (0u64..5).prop_map(Idx::nat),
            Just(Idx::var("n")),
            Just(Idx::var("a")),
        ];
        leaf.prop_recursive(3, 20, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), (1u64..4)).prop_map(|(a, k)| a * Idx::nat(k)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::min(a, b)),
                inner.clone().prop_map(Idx::ceil),
                inner.clone().prop_map(|a| a / Idx::nat(2)),
            ]
        })
    }

    proptest! {
        #[test]
        fn roundtrip_preserves_evaluation(idx in arb_idx(), n in 0i64..10, a in 0i64..10) {
            let env = IdxEnv::from_pairs([("n", Extended::from(n)), ("a", Extended::from(a))]);
            let direct = idx.eval(&env).unwrap();
            let via_linear = LinExpr::of_idx(&idx).to_idx().eval(&env).unwrap();
            prop_assert_eq!(direct, via_linear);
        }

        #[test]
        fn add_then_sub_is_identity(x in arb_idx(), y in arb_idx(), n in 0i64..10, a in 0i64..10) {
            let env = IdxEnv::from_pairs([("n", Extended::from(n)), ("a", Extended::from(a))]);
            let lx = LinExpr::of_idx(&x);
            let ly = LinExpr::of_idx(&y);
            let roundtrip = lx.add(&ly).sub(&ly);
            prop_assert_eq!(roundtrip.to_idx().eval(&env).unwrap(), lx.to_idx().eval(&env).unwrap());
        }
    }
}
