//! The sixteen benchmark programs of Table 1.
//!
//! Types and relative-cost bounds follow the RelCost paper's statements,
//! adapted to this reproduction's concrete syntax and cost model (one unit
//! per application, case, conditional, primitive, let and projection — see
//! `rel_unary::CostModel::standard`).  Constant factors therefore differ from
//! the paper (whose abstract cost model charges only selected steps), but the
//! *shape* of each bound — which quantities it depends on and how — is the
//! same.

/// How far this reproduction's checker gets on a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationStatus {
    /// The program checks against the stated relational type and bound, and
    /// the test suite asserts it.
    Verified,
    /// The program parses and exercises the checker end to end, but the
    /// stated bound is not (yet) discharged by the native constraint solver;
    /// EXPERIMENTS.md records the gap.
    Unverified,
}

/// One benchmark of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The name used in Table 1.
    pub name: &'static str,
    /// Concrete-syntax source (a whole program: helper defs + the benchmark).
    pub source: &'static str,
    /// One-line description (mirrors §6's description of the examples).
    pub description: &'static str,
    /// Whether the stated bound is machine-checked in this reproduction.
    pub status: VerificationStatus,
    /// Name of the definition whose report should be read as "the benchmark".
    pub main_def: &'static str,
}

/// `map` — §3's motivating example: equal mapping functions, lists differing
/// in at most α positions, relative cost t·α.
pub const MAP: &str = r#"
def map : forall t :: real. box(tv a ->[t] tv b) ->
          forall n :: nat. forall al :: nat.
          list[n; al] tv a ->[t * al] list[n; al] tv b
= Lam. fix map(f). Lam. Lam. lam l.
    case l of
      nil -> nil
    | h :: tl -> cons(f h, map f [] [] tl);
"#;

/// `append` — structure-preserving concatenation; zero relative cost.
pub const APPEND: &str = r#"
def append : unitr -> forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->
             forall m :: nat. forall b :: nat.
             list[m; b] (UU int) ->[0] list[n + m; a + b] (UU int)
= fix append(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
    case l1 of
      nil -> l2
    | h :: t -> cons(h, append () [] [] t [] [] l2);
"#;

/// `rev` — naive (append-based) reversal; zero relative cost.
pub const REV: &str = r#"
def append : unitr -> forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->
             forall m :: nat. forall b :: nat.
             list[m; b] (UU int) ->[0] list[n + m; a + b] (UU int)
= fix append(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
    case l1 of
      nil -> l2
    | h :: t -> cons(h, append () [] [] t [] [] l2);

def rev : unitr -> forall n :: nat. forall a :: nat.
          list[n; a] (UU int) ->[0] list[n; a] (UU int)
= fix rev(u). Lam. Lam. lam l.
    case l of
      nil -> nil
    | h :: t -> append () [] [] (rev () [] [] t) [] [] cons(h, nil);
"#;

/// `zip` — pairing two lists position-wise; zero relative cost, differences
/// add.
pub const ZIP: &str = r#"
def zip : unitr -> forall n :: nat. forall a :: nat. forall b :: nat.
          list[n; a] (UU int) ->[0] list[n; b] (UU int) ->[0]
          list[n; a + b] (UU int * UU int)
= fix zip(u). Lam. Lam. Lam. lam l1. lam l2.
    case l1 of
      nil -> nil
    | h1 :: t1 ->
        case l2 of
          nil -> nil
        | h2 :: t2 -> cons((h1, h2), zip () [] [] [] t1 t2);
"#;

/// `appSum` — sum of an appended list; zero relative cost (values differ, the
/// traversal does not).
pub const APP_SUM: &str = r#"
def append : unitr -> forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->
             forall m :: nat. forall b :: nat.
             list[m; b] (UU int) ->[0] list[n + m; a + b] (UU int)
= fix append(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
    case l1 of
      nil -> l2
    | h :: t -> cons(h, append () [] [] t [] [] l2);

def suml : unitr -> forall n :: nat. forall a :: nat.
           list[n; a] (UU int) ->[0] UU int
= fix suml(u). Lam. Lam. lam l.
    case l of
      nil -> 0
    | h :: t -> h + suml () [] [] t;

def appSum : unitr -> forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->
             forall m :: nat. forall b :: nat.
             list[m; b] (UU int) ->[0] UU int
= fix appSum(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
    suml () [] [] (append () [] [] l1 [] [] l2);
"#;

/// `comp` — constant-time comparison of two bit lists (passwords): the two
/// runs always have exactly the same cost, so the relative cost is zero.
/// The statement is made through exact unary `exec` bounds, as in the paper.
pub const COMP: &str = r#"
def comp : UU (unit ->[0, 0] forall n :: nat.
               list[n] int ->[0, 0] list[n] int ->[8 * n + 1, 8 * n + 1] bool)
= fix comp(u). Lam. lam l1. lam l2.
    case l1 of
      nil -> true
    | h1 :: t1 ->
        case l2 of
          nil -> true
        | h2 :: t2 ->
            let r = comp () [] t1 t2 in
            if h1 == h2 then r else false;
"#;

/// `sam` — square-and-multiply exponentiation over a list of bits, written in
/// the constant-time style (both branches of the key-dependent conditional do
/// the same work); exact unary bounds, zero relative cost.
pub const SAM: &str = r#"
def sam : UU (unit ->[0, 0] forall n :: nat.
              list[n] int ->[0, 0] int ->[11 * n + 1, 11 * n + 1] int)
= fix sam(u). Lam. lam bits. lam x.
    case bits of
      nil -> 1
    | b :: rest ->
        let r = sam () [] rest x in
        let s = r * r in
        let m = s * x in
        if b == 1 then m else s;
"#;

/// `find` — two different programs: a head-to-tail scan and a tail-to-head
/// scan; related through their unary exec intervals.
pub const FIND: &str = r#"
def find : U(unit ->[0, 0] forall n :: nat.
             list[n] int ->[0, 0] int ->[7 * n + 1, 7 * n + 1] bool,
             unit ->[0, 0] forall n :: nat.
             list[n] int ->[0, 0] int ->[6 * n + 1, 7 * n + 1] bool)
= fix findA(u). Lam. lam l. lam x.
    case l of
      nil -> false
    | h :: t ->
        let r = findA () [] t x in
        if h == x then true else r
~ fix findB(u). Lam. lam l. lam x.
    case l of
      nil -> false
    | h :: t ->
        let r = findB () [] t x in
        if r then r else h == x;
"#;

/// `2Dcount` — counts the rows of a matrix (list of rows) that contain a key,
/// scanning every row completely; exact unary bounds, zero relative cost.
pub const TWO_D_COUNT: &str = r#"
def has : UU (unit ->[0, 0] forall c :: nat.
              list[c] int ->[0, 0] int ->[7 * c + 1, 7 * c + 1] bool)
= fix has(u). Lam. lam row. lam x.
    case row of
      nil -> false
    | h :: t ->
        let r = has () [] t x in
        if h == x then true else r;

def twoDcount : UU (unit ->[0, 0] forall r :: nat. forall c :: nat.
                    list[r] (list[c] int) ->[0, 0] int ->
                    [(7 * c + 13) * r + 1, (7 * c + 13) * r + 1] int)
= fix cnt(u). Lam. Lam. lam m. lam x.
    case m of
      nil -> 0
    | row :: rest ->
        let r = cnt () [] [] rest x in
        let b = has () [] row x in
        let inc = r + 1 in
        if b then inc else r;
"#;

/// `bsplit` — splits a list into two nearly equal halves (the helper of the
/// divide-and-conquer examples); zero relative cost, halves' sizes and
/// difference counts tracked exactly.
pub const BSPLIT: &str = r#"
def bsplit : box(unitr -> forall n :: nat. forall a :: nat.
              list[n; a] (UU int) ->[0]
              exists b :: nat. {b <= a} &
                (list[ceil(n / 2); b] (UU int) * list[floor(n / 2); a - b] (UU int)))
= fix bsplit(u). Lam. Lam. lam l.
    case l of
      nil -> pack (nil, nil)
    | h1 :: tl1 ->
        case tl1 of
          nil -> pack (cons(h1, nil), nil)
        | h2 :: tl2 ->
            unpack bsplit () [] [] tl2 as r in
            clet r as z in
            pack (cons(h1, fst z), cons(h2, snd z));
"#;

/// `merge` — merging two sorted lists, stated through unary exec bounds
/// (lower bound `min(n, m)`-shaped, upper bound `(n + m)`-shaped), exactly the
/// form the msort walk-through of §6 consumes.
pub const MERGE: &str = r#"
def merge : UU (unit ->[0, 0] forall n :: nat. forall m :: nat.
                (list[n] int * list[m] int)
                ->[11 * min(n, m) + 4, 11 * (n + m) + 6] list[n + m] int)
= fix merge(u). Lam. Lam. lam p.
    let l1 = fst p in
    let l2 = snd p in
    case l1 of
      nil -> l2
    | h1 :: t1 ->
        case l2 of
          nil -> l1
        | h2 :: t2 ->
            if h1 <= h2
            then cons(h1, merge () [] [] (t1, l2))
            else cons(h2, merge () [] [] (l1, t2));
"#;

/// `msort` — merge sort, the paper's worked example: the relative cost of two
/// runs on lists differing in at most α positions is bounded by the
/// divide-and-conquer recurrence `Q(n, α)` (here with the constants of our
/// cost model).
pub const MSORT: &str = r#"
def bsplit : box(unitr -> forall n :: nat. forall a :: nat.
              list[n; a] (UU int) ->[0]
              exists b :: nat. {b <= a} &
                (list[ceil(n / 2); b] (UU int) * list[floor(n / 2); a - b] (UU int)))
= fix bsplit(u). Lam. Lam. lam l.
    case l of
      nil -> pack (nil, nil)
    | h1 :: tl1 ->
        case tl1 of
          nil -> pack (cons(h1, nil), nil)
        | h2 :: tl2 ->
            unpack bsplit () [] [] tl2 as r in
            clet r as z in
            pack (cons(h1, fst z), cons(h2, snd z));

def merge : box(UU (unit ->[0, 0] forall n :: nat. forall m :: nat.
                (list[n] int * list[m] int)
                ->[11 * min(n, m) + 4, 11 * (n + m) + 6] list[n + m] int))
= fix merge(u). Lam. Lam. lam p.
    let l1 = fst p in
    let l2 = snd p in
    case l1 of
      nil -> l2
    | h1 :: t1 ->
        case l2 of
          nil -> l1
        | h2 :: t2 ->
            if h1 <= h2
            then cons(h1, merge () [] [] (t1, l2))
            else cons(h2, merge () [] [] (l1, t2));

def msort : box(unitr -> forall n :: nat. forall al :: nat.
             list[n; al] (UU int)
             ->[sum(i = 0 to ceil(log2(n)),
                    (16 * ceil(pow2(i) / 2) + 32) * min(al, pow2(ceil(log2(n)) - i)))]
             UU (list[n] int))
= fix msort(u). Lam. Lam. lam l.
    case l of
      nil -> nil
    | h1 :: tl1 ->
        case tl1 of
          nil -> cons(h1, nil)
        | h2 :: tl2 ->
            let r = bsplit () [] [] l in
            unpack r as r' in
            clet r' as z in
            merge () [] [] (msort () [] [] (fst z), msort () [] [] (snd z));
"#;

/// `filter` — keeps the elements satisfying a predicate; the output length is
/// existentially quantified and the relative cost is proportional to the
/// number of differing positions.
pub const FILTER: &str = r#"
def filter : box(UU (int ->[1, 1] bool)) ->
             forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->[3 * a]
             exists m :: nat. {m <= n} & UU (list[m] int)
= lam p. fix filter(l).
    case l of
      nil -> pack nil
    | h :: t ->
        unpack filter t as r in
        clet r as kept in
        if p h then pack (cons(h, kept)) else pack kept;
"#;

/// `ssort` — selection sort stated through unary exec bounds (quadratic).
pub const SSORT: &str = r#"
def smallest : UU (unit ->[0, 0] forall n :: nat.
                   list[n] int ->[0, 0] int ->[7 * n + 1, 7 * n + 1] int)
= fix smallest(u). Lam. lam l. lam acc.
    case l of
      nil -> acc
    | h :: t ->
        let m = smallest () [] t acc in
        if h <= m then h else m;

def ssort : UU (unit ->[0, 0] forall n :: nat.
                list[n] int ->[0, 8 * n * n + 12 * n + 1] list[n] int)
= fix ssort(u). Lam. lam l.
    case l of
      nil -> nil
    | h :: t ->
        let m = smallest () [] t h in
        cons(m, ssort () [] t);
"#;

/// `flatten` — concatenates the rows of a matrix; zero relative cost, the
/// output difference count is the product of the row difference counts.
pub const FLATTEN: &str = r#"
def append : unitr -> forall n :: nat. forall a :: nat.
             list[n; a] (UU int) ->
             forall m :: nat. forall b :: nat.
             list[m; b] (UU int) ->[0] list[n + m; a + b] (UU int)
= fix append(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
    case l1 of
      nil -> l2
    | h :: t -> cons(h, append () [] [] t [] [] l2);

def flatten : unitr -> forall r :: nat. forall c :: nat. forall a :: nat.
              list[r; a] (list[c; c] (UU int)) ->[0] list[r * c; a * c] (UU int)
= fix flatten(u). Lam. Lam. Lam. lam m.
    case m of
      nil -> nil
    | row :: rest -> append () [] [] row [] [] (flatten () [] [] [] rest);
"#;

/// `bfold` — a balanced fold (divide-and-conquer sum) over a list, using
/// `bsplit`; the relative cost follows the same recurrence shape as `msort`.
pub const BFOLD: &str = r#"
def bsplit : box(unitr -> forall n :: nat. forall a :: nat.
              list[n; a] (UU int) ->[0]
              exists b :: nat. {b <= a} &
                (list[ceil(n / 2); b] (UU int) * list[floor(n / 2); a - b] (UU int)))
= fix bsplit(u). Lam. Lam. lam l.
    case l of
      nil -> pack (nil, nil)
    | h1 :: tl1 ->
        case tl1 of
          nil -> pack (cons(h1, nil), nil)
        | h2 :: tl2 ->
            unpack bsplit () [] [] tl2 as r in
            clet r as z in
            pack (cons(h1, fst z), cons(h2, snd z));

def bfold : box(unitr -> forall n :: nat. forall al :: nat.
             list[n; al] (UU int)
             ->[sum(i = 0 to ceil(log2(n)),
                    16 * min(al, pow2(ceil(log2(n)) - i)))]
             UU int)
= fix bfold(u). Lam. Lam. lam l.
    case l of
      nil -> 0
    | h1 :: tl1 ->
        case tl1 of
          nil -> h1
        | h2 :: tl2 ->
            let r = bsplit () [] [] l in
            unpack r as r' in
            clet r' as z in
            bfold () [] [] (fst z) + bfold () [] [] (snd z);
"#;

/// All sixteen benchmarks of Table 1, in the paper's row order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    use VerificationStatus::{Unverified, Verified};
    vec![
        Benchmark {
            name: "filter",
            source: FILTER,
            description: "keep the elements satisfying a predicate",
            status: Unverified,
            main_def: "filter",
        },
        Benchmark {
            name: "append",
            source: APPEND,
            description: "list concatenation (zero relative cost)",
            status: Verified,
            main_def: "append",
        },
        Benchmark {
            name: "rev",
            source: REV,
            description: "append-based list reversal (zero relative cost)",
            status: Verified,
            main_def: "rev",
        },
        Benchmark {
            name: "map",
            source: MAP,
            description: "the §3 map example (relative cost t·α)",
            status: Verified,
            main_def: "map",
        },
        Benchmark {
            name: "comp",
            source: COMP,
            description: "constant-time password comparison",
            status: Unverified,
            main_def: "comp",
        },
        Benchmark {
            name: "sam",
            source: SAM,
            description: "constant-time square-and-multiply",
            status: Unverified,
            main_def: "sam",
        },
        Benchmark {
            name: "find",
            source: FIND,
            description: "head-to-tail vs tail-to-head scan (two programs)",
            status: Unverified,
            main_def: "find",
        },
        Benchmark {
            name: "2Dcount",
            source: TWO_D_COUNT,
            description: "count matrix rows containing a key",
            status: Unverified,
            main_def: "twoDcount",
        },
        Benchmark {
            name: "ssort",
            source: SSORT,
            description: "selection sort (unary quadratic bounds)",
            status: Unverified,
            main_def: "ssort",
        },
        Benchmark {
            name: "bsplit",
            source: BSPLIT,
            description: "split a list into two nearly equal halves",
            status: Unverified,
            main_def: "bsplit",
        },
        Benchmark {
            name: "flatten",
            source: FLATTEN,
            description: "concatenate the rows of a matrix",
            // Promoted to Verified when the Fourier–Motzkin layer landed:
            // its obligations (products of row counts and widths against
            // the flattened totals) are decided symbolically — zero grid
            // points — once products distribute over linear combinations.
            status: Verified,
            main_def: "flatten",
        },
        Benchmark {
            name: "appSum",
            source: APP_SUM,
            description: "sum of an appended list (zero relative cost)",
            status: Verified,
            main_def: "appSum",
        },
        Benchmark {
            name: "merge",
            source: MERGE,
            description: "merge two sorted lists (unary interval bounds)",
            status: Unverified,
            main_def: "merge",
        },
        Benchmark {
            name: "zip",
            source: ZIP,
            description: "position-wise pairing (zero relative cost)",
            status: Verified,
            main_def: "zip",
        },
        Benchmark {
            name: "msort",
            source: MSORT,
            description: "merge sort and its divide-and-conquer recurrence",
            status: Unverified,
            main_def: "msort",
        },
        Benchmark {
            name: "bfold",
            source: BFOLD,
            description: "balanced fold over a list",
            status: Unverified,
            main_def: "bfold",
        },
    ]
}

/// Looks up a benchmark by its Table-1 name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("msort").is_some());
        assert!(benchmark("map").is_some());
        assert!(benchmark("quicksort").is_none());
    }

    #[test]
    fn sources_mention_their_main_definition() {
        for b in all_benchmarks() {
            assert!(
                b.source.contains(&format!("def {}", b.main_def)),
                "{} does not define {}",
                b.name,
                b.main_def
            );
        }
    }
}
