//! Workload generators for the empirical relative-cost experiments.
//!
//! The relational statements of the benchmarks speak about pairs of inputs of
//! the same length that differ in at most `α` positions.  These helpers
//! generate exactly such pairs, and build the surface-syntax expressions that
//! apply a benchmark's program to them so the cost-counting evaluator can
//! measure `cost(e₁) − cost(e₂)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rel_syntax::Expr;

/// A pair of same-length integer lists differing in at most `alpha` positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The first input list.
    pub left: Vec<i64>,
    /// The second input list.
    pub right: Vec<i64>,
    /// The number of positions at which the two lists actually differ.
    pub differing: usize,
}

impl Workload {
    /// Generates a workload of length `n` differing in at most `alpha`
    /// positions, deterministically from `seed`.
    pub fn generate(n: usize, alpha: usize, seed: u64) -> Workload {
        let left = random_int_list(n, seed);
        let right = perturb_list(&left, alpha, seed.wrapping_add(1));
        let differing = left.iter().zip(&right).filter(|(a, b)| a != b).count();
        Workload {
            left,
            right,
            differing,
        }
    }
}

/// A deterministic pseudo-random list of small integers.
pub fn random_int_list(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..100)).collect()
}

/// Returns a copy of `base` with at most `alpha` positions changed.
pub fn perturb_list(base: &[i64], alpha: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = base.to_vec();
    if out.is_empty() {
        return out;
    }
    for _ in 0..alpha.min(out.len()) {
        let i = rng.gen_range(0..out.len());
        out[i] = rng.gen_range(100..200);
    }
    out
}

/// A named batch of benchmark sources for service-throughput testing:
/// `copies` replicas of every bundled benchmark (only the verified ones when
/// `only_verified` is set — the unverified programs exercise slow failure
/// paths that drown a throughput measurement), deterministically shuffled so
/// replicas of one benchmark don't run back-to-back.  Replicas make the
/// workload realistic for cache experiments: production traffic re-submits
/// the same definitions constantly.
pub fn batch_benchmark_sources(
    copies: usize,
    only_verified: bool,
    seed: u64,
) -> Vec<(String, String)> {
    let mut jobs: Vec<(String, String)> = Vec::new();
    for c in 0..copies {
        for b in crate::programs::all_benchmarks() {
            if only_verified && b.status != crate::programs::VerificationStatus::Verified {
                continue;
            }
            jobs.push((format!("{}#{c}", b.name), b.source.to_string()));
        }
    }
    // Fisher–Yates with the deterministic generator.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..jobs.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        jobs.swap(i, j);
    }
    jobs
}

/// Builds the surface-syntax literal for an integer list.
pub fn list_literal(items: &[i64]) -> Expr {
    items
        .iter()
        .rev()
        .fold(Expr::Nil, |acc, n| Expr::cons(Expr::Int(*n), acc))
}

/// Builds `f () [] … [] arg` — the standard application spine of the suite's
/// unit-argument, index-polymorphic functions — with `iapps` index
/// applications.
pub fn apply_spine(fun: Expr, iapps: usize, arg: Expr) -> Expr {
    let mut e = fun.app(Expr::Unit);
    for _ in 0..iapps {
        e = e.iapp();
    }
    e.app(arg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_eval::{eval, Env};

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Workload::generate(16, 4, 99);
        let b = Workload::generate(16, 4, 99);
        assert_eq!(a, b);
        assert!(a.differing <= 4);
        assert_eq!(a.left.len(), 16);
    }

    #[test]
    fn batch_workloads_cover_the_suite_and_are_deterministic() {
        let a = batch_benchmark_sources(2, false, 7);
        let b = batch_benchmark_sources(2, false, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2 * crate::all_benchmarks().len());
        // Every replica keeps its source intact and gets a distinct name.
        let mut names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len());

        let verified = batch_benchmark_sources(1, true, 7);
        assert!(!verified.is_empty());
        assert!(verified.len() < crate::all_benchmarks().len());
    }

    #[test]
    fn list_literals_evaluate_to_their_contents() {
        let e = list_literal(&[3, 1, 4]);
        let out = eval(&e, &Env::new()).unwrap();
        assert_eq!(out.value.as_int_list(), Some(vec![3, 1, 4]));
        assert_eq!(out.cost, 0);
    }

    #[test]
    fn apply_spine_builds_the_expected_shape() {
        let e = apply_spine(Expr::var("f"), 2, Expr::Nil);
        assert_eq!(
            e,
            Expr::var("f").app(Expr::Unit).iapp().iapp().app(Expr::Nil)
        );
    }
}
