//! The benchmark suite of the paper's evaluation (Table 1).
//!
//! Each benchmark is a small program in the concrete syntax of `rel-syntax`,
//! annotated with the relational type reported in the RelCost/BiRelCost
//! papers (adapted to this reproduction's concrete syntax and cost model).
//! The suite also provides workload generators used by the empirical
//! relative-cost experiments (E4 in DESIGN.md) and helpers to run a
//! benchmark's program on concrete inputs through the cost-counting
//! evaluator.

pub mod generators;
pub mod programs;

pub use generators::{batch_benchmark_sources, perturb_list, random_int_list, Workload};
pub use programs::{all_benchmarks, benchmark, Benchmark, VerificationStatus};

#[cfg(test)]
mod tests {
    use super::*;
    use birelcost::Engine;

    #[test]
    fn every_benchmark_parses() {
        for b in all_benchmarks() {
            let parsed = rel_syntax::parse_program(b.source);
            assert!(
                parsed.is_ok(),
                "benchmark {} fails to parse: {:?}",
                b.name,
                parsed.err()
            );
            assert!(!parsed.unwrap().is_empty());
        }
    }

    #[test]
    fn names_match_the_paper_table() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        for expected in [
            "filter", "append", "rev", "map", "comp", "sam", "find", "2Dcount", "ssort", "bsplit",
            "flatten", "appSum", "merge", "zip", "msort", "bfold",
        ] {
            assert!(names.contains(&expected), "missing benchmark {expected}");
        }
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn verified_benchmarks_type_check() {
        let engine = Engine::new();
        for b in all_benchmarks() {
            if b.status != VerificationStatus::Verified {
                continue;
            }
            let program = rel_syntax::parse_program(b.source).unwrap();
            let report = engine.check_program(&program);
            assert!(
                report.all_ok(),
                "benchmark {} is marked Verified but fails: {:?}",
                b.name,
                report
                    .defs
                    .iter()
                    .filter(|d| !d.ok)
                    .map(|d| (&d.name, &d.error))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn workload_generators_respect_their_parameters() {
        let base = random_int_list(32, 7);
        assert_eq!(base.len(), 32);
        let changed = perturb_list(&base, 5, 11);
        assert_eq!(changed.len(), 32);
        let diffs = base.iter().zip(&changed).filter(|(a, b)| a != b).count();
        assert!(
            diffs <= 5,
            "expected at most 5 differing positions, got {diffs}"
        );
    }
}
