//! Open-loop load harness for the serving plane (DESIGN.md §10.4).
//!
//! Drives both codec planes — NDJSON and HTTP/1.1 — with a fixed-rate
//! *open-loop* schedule: every request has an absolute scheduled send time
//! and its latency is measured **from that scheduled time**, not from the
//! moment the socket write happened.  A closed-loop client (send, wait,
//! send) hides server queueing by slowing itself down to match the server;
//! an open-loop client keeps its promise and bills every queueing delay to
//! the response, which is what a caller with its own deadline experiences.
//!
//! Two phases per plane:
//!
//! * `cold` — after `{"cache": "clear"}`, so every check runs the full
//!   pipeline (constraint generation, proving, sweeping);
//! * `warm` — the serving steady state, where the validity cache answers
//!   and a check is parse + hash + lookup.
//!
//! By default the harness boots an in-process reactor on two ephemeral
//! listeners.  The CI `service-load-gate` job instead points it at a live
//! `birelcost serve` daemon via `SERVICE_LOAD_NDJSON` / `SERVICE_LOAD_HTTP`
//! (host:port), exercising the real binary over real sockets.  Either way
//! the summary lands in `BENCH_service.json` at the workspace root:
//! throughput, p50/p99 latency, deadline misses, backpressure refusals and
//! client-observed connection errors, per plane and phase.
//!
//! Knobs (all optional): `SERVICE_LOAD_REQUESTS` (warm requests per plane,
//! default 400), `SERVICE_LOAD_RATE` (warm offered rps, default 200),
//! `SERVICE_LOAD_CONNS` (connections per plane, default 4).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rel_service::json::{self, Value};
use rel_service::{serve_reactor, CodecKind, ReactorOptions, Service, ServiceConfig};
use rel_suite::all_benchmarks;

/// Benchmarks cheap enough (milliseconds cold) that the offered rate, not
/// the checker, is the bottleneck — the regime where latency percentiles
/// measure the *serving plane*.
const PROGRAMS: &[&str] = &["append", "rev", "map", "zip", "filter", "find"];

const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let warm_requests = env_usize("SERVICE_LOAD_REQUESTS", 400);
    let warm_rate = env_usize("SERVICE_LOAD_RATE", 200) as f64;
    let conns = env_usize("SERVICE_LOAD_CONNS", 4).max(1);
    let sources: Vec<String> = {
        let all = all_benchmarks();
        PROGRAMS
            .iter()
            .map(|name| {
                all.iter()
                    .find(|b| b.name == *name)
                    .unwrap_or_else(|| panic!("no bundled benchmark `{name}`"))
                    .source
                    .to_string()
            })
            .collect()
    };

    // External daemon (CI) or in-process reactor (local).
    let external = (
        std::env::var("SERVICE_LOAD_NDJSON").ok(),
        std::env::var("SERVICE_LOAD_HTTP").ok(),
    );
    let (ndjson_addr, http_addr, server) = match external {
        (Some(nd), Some(http)) => (nd, http, None),
        (None, None) => {
            let (nd, http, handle) = start_reactor();
            (nd, http, Some(handle))
        }
        _ => panic!("set both SERVICE_LOAD_NDJSON and SERVICE_LOAD_HTTP, or neither"),
    };
    let mode = if server.is_none() {
        "external"
    } else {
        "in-process"
    };
    println!("service_load: {mode} daemon, ndjson={ndjson_addr} http={http_addr}");

    let planes = [
        (CodecKind::Ndjson, ndjson_addr.clone()),
        (CodecKind::Http, http_addr.clone()),
    ];
    let mut results: Vec<(CodecKind, PhaseResult, PhaseResult)> = Vec::new();
    for (kind, addr) in &planes {
        // Cold: full-pipeline checks at a fifth of the warm rate (each check
        // costs real solver time, and the point is latency under load the
        // checker can sustain, not a saturation test).
        send_one(*kind, addr, "{\"cache\": \"clear\"}");
        let cold = run_phase(
            *kind,
            addr,
            &sources,
            "cold",
            sources.len() * 4,
            (warm_rate / 5.0).max(10.0),
            conns,
        );
        // Warm: prime every program once, then the steady state.
        for source in &sources {
            send_one(*kind, addr, &check_request(0, source));
        }
        let warm = run_phase(
            *kind,
            addr,
            &sources,
            "warm",
            warm_requests,
            warm_rate,
            conns,
        );
        results.push((*kind, cold, warm));
    }

    if server.is_some() {
        send_one(CodecKind::Ndjson, &ndjson_addr, "{\"shutdown\": true}");
    }
    if let Some(handle) = server {
        let summary = handle.join().expect("reactor thread").expect("reactor");
        println!("service_load: reactor summary {summary:?}");
    }

    let json = render_json(mode, conns, &sources, &results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}\n{json}"),
    }

    // Acceptance bars.  CI enforces the committed floors/ceilings in the
    // service-load-gate job; these in-bench asserts are the looser sanity
    // net that also protects local runs.
    for (kind, cold, warm) in &results {
        let plane = kind.label();
        for phase in [cold, warm] {
            assert_eq!(
                phase.completed, phase.requests,
                "{plane}/{}: {} of {} requests unanswered",
                phase.name, phase.requests, phase.completed
            );
            assert_eq!(
                phase.conn_errors, 0,
                "{plane}/{}: client saw connection errors",
                phase.name
            );
            assert_eq!(
                phase.errors, 0,
                "{plane}/{}: unexpected error responses",
                phase.name
            );
        }
        assert!(
            warm.throughput_rps >= 25.0,
            "{plane}/warm: throughput {:.1} rps below the 25 rps floor",
            warm.throughput_rps
        );
        assert!(
            warm.p99_ms <= 2_000.0,
            "{plane}/warm: p99 {:.1} ms above the 2000 ms ceiling",
            warm.p99_ms
        );
    }
    println!("service_load: all gates passed");
}

/// Boots an in-process reactor over both planes; returns the two addresses
/// and the join handle.
#[allow(clippy::type_complexity)]
fn start_reactor() -> (
    String,
    String,
    std::thread::JoinHandle<std::io::Result<rel_service::ReactorSummary>>,
) {
    let service = Service::new(ServiceConfig::default());
    let nd = TcpListener::bind("127.0.0.1:0").expect("bind ndjson");
    let http = TcpListener::bind("127.0.0.1:0").expect("bind http");
    let nd_addr = nd.local_addr().unwrap().to_string();
    let http_addr = http.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        serve_reactor(
            &service,
            vec![(nd, CodecKind::Ndjson), (http, CodecKind::Http)],
            ReactorOptions::default(),
        )
    });
    (nd_addr, http_addr, handle)
}

fn check_request(id: usize, source: &str) -> String {
    Value::obj([
        ("id", Value::Int(id as i64)),
        ("check", Value::Str(source.to_string())),
    ])
    .to_string()
}

/// One request outside any measured window (cache control, priming,
/// shutdown), on a throwaway connection of the given plane.
fn send_one(kind: CodecKind, addr: &str, request: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    match kind {
        CodecKind::Ndjson => {
            stream.write_all(request.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut line = String::new();
            BufReader::new(stream)
                .read_line(&mut line)
                .expect("response");
        }
        CodecKind::Http => {
            let head = format!(
                "POST /check HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                request.len()
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(request.as_bytes()).unwrap();
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).expect("response");
        }
        // The replica plane speaks peer-to-peer WAL shipping, not client
        // requests; the load harness never drives it.
        CodecKind::Replica => unreachable!("service_load drives client planes only"),
    }
}

/// The measured outcome of one phase on one plane.
struct PhaseResult {
    name: &'static str,
    requests: usize,
    completed: usize,
    offered_rps: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    deadline_misses: usize,
    backpressure: usize,
    errors: usize,
    conn_errors: usize,
}

/// Per-connection tally a client thread returns.
#[derive(Default)]
struct ConnTally {
    latencies_ns: Vec<u64>,
    deadline_misses: usize,
    backpressure: usize,
    errors: usize,
    conn_errors: usize,
    last_done: Option<Instant>,
}

/// Runs `total` requests at `rate` rps spread round-robin over `conns`
/// connections, open-loop: request *i* is sent at `start + i/rate` whether
/// or not earlier responses have arrived, and its latency runs from that
/// scheduled instant.
fn run_phase(
    kind: CodecKind,
    addr: &str,
    sources: &[String],
    name: &'static str,
    total: usize,
    rate: f64,
    conns: usize,
) -> PhaseResult {
    let start = Instant::now() + Duration::from_millis(50);
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_index in 0..conns {
            let addr = addr.to_string();
            handles.push(scope.spawn(move || {
                // This connection owns requests conn_index, conn_index+conns, …
                let schedule: Vec<(usize, Instant)> = (0..total)
                    .filter(|i| i % conns == conn_index)
                    .map(|i| (i, start + Duration::from_secs_f64(i as f64 / rate)))
                    .collect();
                match kind {
                    CodecKind::Ndjson => drive_ndjson(&addr, sources, &schedule),
                    CodecKind::Http => drive_http(&addr, sources, &schedule),
                    CodecKind::Replica => {
                        unreachable!("service_load drives client planes only")
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut result = PhaseResult {
        name,
        requests: total,
        completed: 0,
        offered_rps: rate,
        throughput_rps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        max_ms: 0.0,
        deadline_misses: 0,
        backpressure: 0,
        errors: 0,
        conn_errors: 0,
    };
    let mut last_done = start;
    for tally in tallies {
        result.completed += tally.latencies_ns.len();
        result.deadline_misses += tally.deadline_misses;
        result.backpressure += tally.backpressure;
        result.errors += tally.errors;
        result.conn_errors += tally.conn_errors;
        latencies.extend(tally.latencies_ns);
        if let Some(done) = tally.last_done {
            last_done = last_done.max(done);
        }
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx] as f64 / 1e6
    };
    result.p50_ms = quantile(0.50);
    result.p99_ms = quantile(0.99);
    result.max_ms = quantile(1.0);
    let wall = last_done.saturating_duration_since(start).as_secs_f64();
    result.throughput_rps = if wall > 0.0 {
        result.completed as f64 / wall
    } else {
        0.0
    };
    println!(
        "service_load: {}/{name}: {}/{} ok, offered {:.0} rps, completed {:.1} rps, \
         p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms, deadline {}, backpressure {}, \
         errors {}, conn_errors {}",
        kind.label(),
        result.completed,
        result.requests,
        result.offered_rps,
        result.throughput_rps,
        result.p50_ms,
        result.p99_ms,
        result.max_ms,
        result.deadline_misses,
        result.backpressure,
        result.errors,
        result.conn_errors,
    );
    result
}

/// Classifies one parsed response into the tally's error buckets.
fn classify(payload: &Value, tally: &mut ConnTally) {
    match payload.get("error") {
        Some(Value::Str(e)) if e == "deadline" => tally.deadline_misses += 1,
        Some(Value::Str(e)) if e == "backpressure" => tally.backpressure += 1,
        Some(_) => tally.errors += 1,
        None => {}
    }
}

/// NDJSON client: a writer honoring the schedule plus a reader pairing
/// responses to scheduled times by id echo (responses arrive in finish
/// order, not send order).
fn drive_ndjson(addr: &str, sources: &[String], schedule: &[(usize, Instant)]) -> ConnTally {
    let Ok(stream) = TcpStream::connect(addr) else {
        let mut tally = ConnTally::default();
        tally.conn_errors += 1;
        return tally;
    };
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let _ = stream.set_nodelay(true);
    let scheduled: Arc<Mutex<HashMap<i64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let expected = schedule.len();

    let reader_stream = stream.try_clone().expect("clone stream");
    let reader_scheduled = Arc::clone(&scheduled);
    let reader = std::thread::spawn(move || {
        let mut tally = ConnTally::default();
        let mut reader = BufReader::new(reader_stream);
        for _ in 0..expected {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    tally.conn_errors += 1;
                    return tally;
                }
                Ok(_) => {}
            }
            let done = Instant::now();
            let Ok(payload) = json::parse(line.trim()) else {
                tally.errors += 1;
                continue;
            };
            let sent_at = payload
                .get("id")
                .and_then(|id| id.as_int())
                .and_then(|id| reader_scheduled.lock().unwrap().remove(&id));
            if let Some(sent_at) = sent_at {
                tally
                    .latencies_ns
                    .push(done.saturating_duration_since(sent_at).as_nanos() as u64);
                tally.last_done = Some(done);
            }
            classify(&payload, &mut tally);
        }
        tally
    });

    let mut writer = stream;
    let mut write_errors = 0;
    for (index, sent_at) in schedule {
        sleep_until(*sent_at);
        scheduled.lock().unwrap().insert(*index as i64, *sent_at);
        let request = check_request(*index, &sources[index % sources.len()]);
        if writer.write_all(request.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            write_errors += 1;
            break;
        }
    }
    let mut tally = reader.join().expect("reader thread");
    tally.conn_errors += write_errors;
    tally
}

/// HTTP client: same open-loop writer; the plane is half-duplex with
/// in-order responses, so the reader pairs the k-th response with the k-th
/// scheduled send.
fn drive_http(addr: &str, sources: &[String], schedule: &[(usize, Instant)]) -> ConnTally {
    let Ok(stream) = TcpStream::connect(addr) else {
        let mut tally = ConnTally::default();
        tally.conn_errors += 1;
        return tally;
    };
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let _ = stream.set_nodelay(true);
    let sent_order: Vec<Instant> = schedule.iter().map(|(_, at)| *at).collect();

    let reader_stream = stream.try_clone().expect("clone stream");
    let expected = schedule.len();
    let reader = std::thread::spawn(move || {
        let mut tally = ConnTally::default();
        let mut reader = BufReader::new(reader_stream);
        for sent_at in sent_order.into_iter().take(expected) {
            let Some(content) = read_http_content(&mut reader) else {
                tally.conn_errors += 1;
                return tally;
            };
            let done = Instant::now();
            tally
                .latencies_ns
                .push(done.saturating_duration_since(sent_at).as_nanos() as u64);
            tally.last_done = Some(done);
            match json::parse(String::from_utf8_lossy(&content).trim()) {
                Ok(payload) => classify(&payload, &mut tally),
                Err(_) => tally.errors += 1,
            }
        }
        tally
    });

    let mut writer = stream;
    let mut write_errors = 0;
    for (index, sent_at) in schedule {
        sleep_until(*sent_at);
        let body = check_request(*index, &sources[index % sources.len()]);
        let request = format!(
            "POST /check HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if writer.write_all(request.as_bytes()).is_err() {
            write_errors += 1;
            break;
        }
    }
    let mut tally = reader.join().expect("reader thread");
    tally.conn_errors += write_errors;
    tally
}

/// Reads one `Content-Length`-framed HTTP response body off a keep-alive
/// connection; `None` on a closed or unreadable stream.
fn read_http_content(reader: &mut BufReader<TcpStream>) -> Option<Vec<u8>> {
    let mut length: Option<usize> = None;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {}
        }
        if line == "\r\n" {
            break;
        }
        if let Some(rest) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = rest.trim().parse().ok();
        }
    }
    let mut content = vec![0u8; length?];
    reader.read_exact(&mut content).ok()?;
    Some(content)
}

/// Sleeps until an absolute instant (no-op if it has passed).
fn sleep_until(at: Instant) {
    let now = Instant::now();
    if at > now {
        std::thread::sleep(at - now);
    }
}

fn render_phase(phase: &PhaseResult) -> String {
    format!(
        "{{\n        \"requests\": {},\n        \"completed\": {},\n        \
         \"offered_rps\": {:.1},\n        \"throughput_rps\": {:.1},\n        \
         \"p50_ms\": {:.2},\n        \"p99_ms\": {:.2},\n        \"max_ms\": {:.2},\n        \
         \"deadline_misses\": {},\n        \"backpressure\": {},\n        \
         \"errors\": {},\n        \"conn_errors\": {}\n      }}",
        phase.requests,
        phase.completed,
        phase.offered_rps,
        phase.throughput_rps,
        phase.p50_ms,
        phase.p99_ms,
        phase.max_ms,
        phase.deadline_misses,
        phase.backpressure,
        phase.errors,
        phase.conn_errors,
    )
}

fn render_json(
    mode: &str,
    conns: usize,
    sources: &[String],
    results: &[(CodecKind, PhaseResult, PhaseResult)],
) -> String {
    let mut planes = String::new();
    for (i, (kind, cold, warm)) in results.iter().enumerate() {
        if i > 0 {
            planes.push_str(",\n");
        }
        planes.push_str(&format!(
            "    \"{}\": {{\n      \"cold\": {},\n      \"warm\": {}\n    }}",
            kind.label(),
            render_phase(cold),
            render_phase(warm),
        ));
    }
    format!(
        "{{\n  \"bench\": \"service_load\",\n  \"mode\": \"{mode}\",\n  \
         \"conns\": {conns},\n  \"programs\": {},\n  \"planes\": {{\n{planes}\n  }}\n}}\n",
        sources.len(),
    )
}
