//! Regenerates Table 1 of the paper: per-benchmark wall-clock time for the
//! whole pipeline, split into type checking, existential elimination and
//! constraint solving.  Criterion measures the end-to-end check; the split is
//! printed once per benchmark from the engine's own timers.
use criterion::{criterion_group, criterion_main, Criterion};

use birelcost::Engine;
use rel_suite::all_benchmarks;
use rel_syntax::parse_program;

fn table1(c: &mut Criterion) {
    let engine = Engine::new();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    println!(
        "\n{:<10} {:>10} {:>12} {:>14} {:>12}  result",
        "Benchmark", "total(s)", "typecheck(s)", "exist.elim(s)", "solving(s)"
    );
    for b in all_benchmarks() {
        let program = parse_program(b.source).expect("benchmark parses");
        if b.status != rel_suite::VerificationStatus::Verified {
            println!(
                "{:<10} {:>10} {:>12} {:>14} {:>12}  not verified (skipped; see EXPERIMENTS.md)",
                b.name, "-", "-", "-", "-"
            );
            continue;
        }
        // One instrumented run for the printed table row.
        let report = engine.check_program(&program);
        let timings = report
            .def(b.main_def)
            .map(|d| d.timings)
            .unwrap_or_default();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>14.3} {:>12.3}  {}",
            b.name,
            report.total_time().as_secs_f64(),
            timings.typecheck.as_secs_f64(),
            timings.existential_elim.as_secs_f64(),
            timings.solving.as_secs_f64(),
            if report.all_ok() {
                "checked"
            } else {
                "not verified"
            }
        );
        // Criterion timing of the full pipeline.
        group.bench_function(b.name, |bench| {
            bench.iter(|| engine.check_program(&program));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = table1
}
criterion_main!(benches);
