//! Numeric-layer grid checking: tree evaluation vs the compiled bytecode.
//!
//! The workload is two numeric-heavy entailments the symbolic layer cannot
//! discharge, with the two constraint shapes that dominate the suite's
//! numeric checks:
//!
//! * a merge-sort-style recurrence bound whose goal compares an opaque
//!   summation (`Σ min(a, 2^i)`) against a non-linear bound, and
//! * a pointwise disjunction (the shape heuristic 1 produces when it joins
//!   the consC/consNC derivations with ∨).
//!
//! Each check sweeps the full 3-variable grid (31³ = 29 791 points, the
//! regime the unverified-suite checks live in) plus the randomized phase,
//! through `use_compiled_eval = false` (the tree-walking reference
//! evaluator) and through the default compiled path.  Besides the
//! criterion-style report, the bench writes a machine-readable summary to
//! `BENCH_numeric.json` at the workspace root so the perf trajectory can be
//! tracked across PRs, and asserts the ≥5× acceptance bar for the compiled
//! layer.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use birelcost::Engine;
use rel_constraint::{Constr, SolveConfig, Solver};
use rel_index::{Idx, IdxVar, Sort};
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

fn universals() -> Vec<(IdxVar, Sort)> {
    vec![
        (IdxVar::new("n"), Sort::Nat),
        (IdxVar::new("a"), Sort::Nat),
        (IdxVar::new("b"), Sort::Nat),
    ]
}

/// The two queries of the workload, as (hypothesis, goal) pairs.  Both are
/// valid, and only the numeric layer can see that.
fn queries() -> Vec<(Constr, Constr)> {
    // Σ_{i=0}^{b} min(a, 2^i)  ≤  n·a + n + 1   when b ≤ a ≤ n
    // (the sum is at most (b+1)·a ≤ (n+1)·a ≤ n·a + n).
    let hyp =
        Constr::leq(Idx::var("a"), Idx::var("n")).and(Constr::leq(Idx::var("b"), Idx::var("a")));
    let sum = Idx::sum(
        "i",
        Idx::zero(),
        Idx::var("b"),
        Idx::min(Idx::var("a"), Idx::pow2(Idx::var("i"))),
    );
    let recurrence = Constr::leq(
        sum,
        Idx::var("n") * Idx::var("a") + Idx::var("n") + Idx::one(),
    );
    // n ≤ 20  ∨  n + a ≥ 15 — valid pointwise only.
    let disjunction = Constr::leq(Idx::var("n"), Idx::nat(20))
        .or(Constr::geq(Idx::var("n") + Idx::var("a"), Idx::nat(15)));
    vec![(hyp, recurrence), (Constr::Top, disjunction)]
}

/// An enlarged grid (31³ = 29 791 points): the regime the unverified-suite
/// checks live in, where per-check fixed costs (the symbolic attempt, lemma
/// saturation — identical on both paths) are noise and the per-point
/// evaluator dominates.  The FM layer is pinned *off* here — this series
/// measures the numeric evaluators against each other, and FM would decide
/// the disjunction query without evaluating a single point.
fn grid_config() -> SolveConfig {
    SolveConfig {
        nat_grid_max: 30,
        max_grid_points: 29_791,
        use_fm: false,
        ..SolveConfig::default()
    }
}

fn tree_config() -> SolveConfig {
    SolveConfig {
        use_compiled_eval: false,
        ..grid_config()
    }
}

/// One full pass over the workload from a fresh solver (compile + sweep for
/// the compiled path, pure interpretation for the tree path).
fn run_workload(config: &SolveConfig) -> usize {
    let mut solver = Solver::with_config(config.clone());
    let u = universals();
    for (hyp, goal) in &queries() {
        assert!(
            solver.entails(&u, hyp, goal).is_valid(),
            "the bench workload must be valid"
        );
    }
    assert!(
        solver.stats().numeric_checks >= 2,
        "the bench workload must reach the numeric layer"
    );
    solver.stats().points_evaluated
}

/// Mean nanoseconds per workload pass over `samples` runs.
fn measure(config: &SolveConfig, samples: u32) -> f64 {
    run_workload(config); // warm-up (and correctness assertion)
    let start = Instant::now();
    for _ in 0..samples {
        run_workload(config);
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

fn solver_grid(c: &mut Criterion) {
    let points = run_workload(&grid_config());
    println!("\nsolver_grid workload: {points} grid+random points per pass");

    c.bench_function("solver_grid/tree_eval", |b| {
        let config = tree_config();
        b.iter(|| run_workload(&config));
    });
    c.bench_function("solver_grid/compiled_eval", |b| {
        let config = grid_config();
        b.iter(|| run_workload(&config));
    });
    // A warm program cache (the serving steady state: the bytecode is
    // memoized, every check is sweep-only).
    c.bench_function("solver_grid/compiled_eval_warm_program", |b| {
        let mut solver = Solver::with_config(grid_config());
        let u = universals();
        let queries = queries();
        b.iter(|| {
            for (hyp, goal) in &queries {
                assert!(solver.entails(&u, hyp, goal).is_valid());
            }
        });
    });

    // ----------------------------------------------------------------
    // fm_vs_grid: the verified-suite obligation corpus through the full
    // engine, with the Fourier–Motzkin layer on (default) vs off.  The
    // FM side must decide every obligation symbolically — zero grid or
    // random points — which is the layer's acceptance gate.
    //
    // The headline `speedup` compares the **decision layers** on the
    // identical obligation stream: the wall clock spent inside
    // Fourier–Motzkin (`DefReport::fm_time`, proving) against the wall
    // clock spent inside the numeric layer (`DefReport::numeric_time`,
    // compiling + sweeping) when FM is off.  Everything around them —
    // constraint generation, the candidate-substitution search, fact
    // preparation — is configuration-independent by construction and
    // reported separately as the end-to-end `engine_*` series (where the
    // decision layers are ~10% of the pipeline at the default grid caps,
    // so even an infinitely fast prover could not move that ratio far
    // from 1).
    // ----------------------------------------------------------------
    let samples = 10;
    let mut fm = SuiteRun::default();
    let mut grid = SuiteRun::default();
    run_verified_suite(true); // warm-up
    run_verified_suite(false);
    for _ in 0..samples {
        fm.add(run_verified_suite(true));
        grid.add(run_verified_suite(false));
    }
    let fm_speedup = grid.decision_ns / fm.decision_ns;
    let engine_speedup = grid.engine_ns / fm.engine_ns;
    println!(
        "fm_vs_grid: proving {:.2} ms / sweeping {:.2} ms per pass ({fm_speedup:.2}x); \
         engine {:.2} ms vs {:.2} ms ({engine_speedup:.2}x); \
         {} vs {} points",
        fm.decision_ns / 1e6,
        grid.decision_ns / 1e6,
        fm.engine_ns / 1e6,
        grid.engine_ns / 1e6,
        fm.points,
        grid.points,
    );
    c.bench_function("solver_grid/fm_verified_suite", |b| {
        b.iter(|| run_verified_suite(true))
    });

    // ----------------------------------------------------------------
    // exelim: merge and msort end-to-end.  Their residual existential
    // searches used to run for *minutes* (they were excluded from every
    // suite); the indexed component search holds them to seconds.  The
    // stated bounds are still not discharged (`ok = false` is the
    // documented verdict — see rel-suite), so the gate here is the time
    // ceiling, not the verdict.
    // ----------------------------------------------------------------
    let (merge_ms, merge_ok) = run_benchmark("merge");
    let (msort_ms, msort_ok) = run_benchmark("msort");
    println!(
        "exelim: merge {merge_ms:.0} ms (ok={merge_ok}), msort {msort_ms:.0} ms (ok={msort_ok})"
    );

    // Per-phase wall-clock breakdown of one default-configuration pass over
    // the verified suite — where a checking second actually goes.  The
    // same quantities `check --metrics-out` exports as histograms, kept in
    // the bench summary so phase-level regressions show up in the perf
    // trajectory, not just end-to-end totals.
    let phases = suite_phase_breakdown();
    println!(
        "phases (verified suite): typecheck {:.1} ms, exelim {:.1} ms, solving {:.1} ms, \
         fm {:.1} ms, numeric {:.1} ms",
        phases.typecheck_ms, phases.exelim_ms, phases.solving_ms, phases.fm_ms, phases.numeric_ms
    );

    // Machine-readable summary for the perf trajectory.
    let tree_ns = measure(&tree_config(), samples);
    let compiled_ns = measure(&grid_config(), samples);
    let speedup = tree_ns / compiled_ns;
    let json = format!(
        "{{\n  \"bench\": \"solver_grid\",\n  \"points_per_pass\": {points},\n  \
         \"samples\": {samples},\n  \"tree_ns_per_pass\": {tree_ns:.0},\n  \
         \"compiled_ns_per_pass\": {compiled_ns:.0},\n  \"speedup\": {speedup:.2},\n  \
         \"fm_vs_grid\": {{\n    \"corpus\": \"verified suite\",\n    \
         \"series\": \"decision layer: fm_time (proving) vs numeric_time (sweeping)\",\n    \
         \"fm_points\": {fm_points},\n    \"grid_points\": {grid_points},\n    \
         \"fm_ns\": {fm_decision_ns:.0},\n    \"grid_ns\": {grid_decision_ns:.0},\n    \
         \"speedup\": {fm_speedup:.2},\n    \
         \"engine_fm_ns\": {engine_fm_ns:.0},\n    \"engine_grid_ns\": {engine_grid_ns:.0},\n    \
         \"engine_speedup\": {engine_speedup:.2}\n  }},\n  \
         \"phases\": {{\n    \"corpus\": \"verified suite\",\n    \
         \"typecheck_ms\": {typecheck_ms:.1},\n    \"exelim_ms\": {exelim_ms:.1},\n    \
         \"solving_ms\": {solving_ms:.1},\n    \"fm_ms\": {fm_ms:.1},\n    \
         \"numeric_ms\": {numeric_ms:.1}\n  }},\n  \
         \"exelim\": {{\n    \"merge_ms\": {merge_ms:.0},\n    \"merge_ok\": {merge_ok},\n    \
         \"msort_ms\": {msort_ms:.0},\n    \"msort_ok\": {msort_ok}\n  }}\n}}\n",
        typecheck_ms = phases.typecheck_ms,
        exelim_ms = phases.exelim_ms,
        solving_ms = phases.solving_ms,
        fm_ms = phases.fm_ms,
        numeric_ms = phases.numeric_ms,
        fm_points = fm.points,
        grid_points = grid.points,
        fm_decision_ns = fm.decision_ns / samples as f64,
        grid_decision_ns = grid.decision_ns / samples as f64,
        engine_fm_ns = fm.engine_ns / samples as f64,
        engine_grid_ns = grid.engine_ns / samples as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_numeric.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}\n{json}"),
    }
    assert!(
        speedup >= 5.0,
        "compiled numeric layer must be >= 5x the tree evaluator, got {speedup:.2}x"
    );
    assert_eq!(
        fm.points, 0,
        "the FM layer must decide the verified-suite obligation corpus with zero grid points"
    );
    assert!(
        grid.points > 0,
        "the FM-off control must actually exercise the grid (otherwise the series is vacuous)"
    );
    assert!(
        fm_speedup >= 1.2,
        "proving regressed below the sweeping it replaces: {fm_speedup:.2}x < 1.2x"
    );
    assert!(
        merge_ms < 10_000.0 && msort_ms < 60_000.0,
        "the indexed existential search stopped holding merge/msort to seconds: \
         merge {merge_ms:.0} ms, msort {msort_ms:.0} ms"
    );
}

/// Accumulated measurements of repeated verified-suite passes.
#[derive(Default)]
struct SuiteRun {
    points: usize,
    engine_ns: f64,
    decision_ns: f64,
}

impl SuiteRun {
    fn add(&mut self, (points, engine_ns, decision_ns): (usize, f64, f64)) {
        self.points = points;
        self.engine_ns += engine_ns;
        self.decision_ns += decision_ns;
    }
}

/// Checks every verified benchmark through a fresh engine; returns the
/// total numeric points evaluated, the end-to-end wall time, and the
/// decision-layer wall time (FM when `use_fm`, the numeric layer
/// otherwise) in nanoseconds.
fn run_verified_suite(use_fm: bool) -> (usize, f64, f64) {
    let engine = Engine::new().with_solve_config(SolveConfig {
        use_fm,
        ..SolveConfig::default()
    });
    let start = Instant::now();
    let mut points = 0;
    let mut decision = std::time::Duration::ZERO;
    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            continue;
        }
        let program = parse_program(b.source).expect("suite sources parse");
        let report = engine.check_program(&program);
        assert!(report.all_ok(), "{} must check in the bench corpus", b.name);
        points += report.points_evaluated();
        decision += if use_fm {
            report.fm_time()
        } else {
            report.numeric_time()
        };
    }
    (
        points,
        start.elapsed().as_nanos() as f64,
        decision.as_nanos() as f64,
    )
}

/// Per-phase wall clock of one verified-suite pass, in milliseconds.
struct PhaseBreakdown {
    typecheck_ms: f64,
    exelim_ms: f64,
    solving_ms: f64,
    fm_ms: f64,
    numeric_ms: f64,
}

/// Checks the verified suite once with the default engine, summing each
/// phase across every definition report.
fn suite_phase_breakdown() -> PhaseBreakdown {
    let engine = Engine::new();
    let mut typecheck = std::time::Duration::ZERO;
    let mut exelim = std::time::Duration::ZERO;
    let mut solving = std::time::Duration::ZERO;
    let mut fm = std::time::Duration::ZERO;
    let mut numeric = std::time::Duration::ZERO;
    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            continue;
        }
        let program = parse_program(b.source).expect("suite sources parse");
        let report = engine.check_program(&program);
        for def in &report.defs {
            typecheck += def.timings.typecheck;
            exelim += def.timings.existential_elim;
            solving += def.timings.solving;
        }
        fm += report.fm_time();
        numeric += report.numeric_time();
    }
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    PhaseBreakdown {
        typecheck_ms: ms(typecheck),
        exelim_ms: ms(exelim),
        solving_ms: ms(solving),
        fm_ms: ms(fm),
        numeric_ms: ms(numeric),
    }
}

/// Checks one named benchmark end-to-end; returns (milliseconds, all_ok).
fn run_benchmark(name: &str) -> (f64, bool) {
    let b = rel_suite::benchmark(name).expect("known benchmark");
    let program = parse_program(b.source).expect("suite sources parse");
    let engine = Engine::new();
    let start = Instant::now();
    let report = engine.check_program(&program);
    (start.elapsed().as_secs_f64() * 1e3, report.all_ok())
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_millis(300));
    targets = solver_grid
}
criterion_main!(benches);
