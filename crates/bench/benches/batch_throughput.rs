//! Batch-checking throughput of the `rel-service` subsystem.
//!
//! Three measurements over the same replicated-suite workload
//! (`rel_suite::batch_benchmark_sources`): sequential checking without a
//! cache (the pre-service baseline), the worker pool with a cold shared
//! validity cache, and the worker pool re-checking with a warm cache.  The
//! cache hit/miss counters are printed once so throughput numbers can be read
//! against cache effectiveness.
use criterion::{criterion_group, criterion_main, Criterion};

use birelcost::Engine;
use rel_service::{check_batch, BatchJob, Service, ServiceConfig};
use rel_suite::batch_benchmark_sources;

fn workload() -> Vec<BatchJob> {
    batch_benchmark_sources(3, true, 42)
        .into_iter()
        .map(|(name, source)| BatchJob::new(name, source))
        .collect()
}

fn batch_throughput(c: &mut Criterion) {
    let jobs = workload();
    let workers = rel_service::available_workers().min(8);
    println!("\nbatch workload: {} jobs, {} workers", jobs.len(), workers);

    c.bench_function("batch_sequential_uncached", |b| {
        let engine = Engine::new();
        b.iter(|| check_batch(&engine, &jobs, 1));
    });

    c.bench_function("batch_parallel_cold_cache", |b| {
        b.iter(|| {
            // A fresh service per iteration keeps the cache cold.
            let service = Service::new(ServiceConfig {
                workers,
                cache_shards: 16,
            });
            service.check_batch(&jobs)
        });
    });

    c.bench_function("batch_parallel_warm_cache", |b| {
        let service = Service::new(ServiceConfig {
            workers,
            cache_shards: 16,
        });
        service.check_batch(&jobs); // warm-up pass populates the cache
        b.iter(|| service.check_batch(&jobs));
    });

    let service = Service::new(ServiceConfig {
        workers,
        cache_shards: 16,
    });
    service.check_batch(&jobs);
    service.check_batch(&jobs);
    let stats = service.cache_stats();
    println!(
        "validity cache after two passes: {} hits / {} misses / {} entries ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = batch_throughput
}
criterion_main!(benches);
