//! The paper's "annotation effort" claim (§6): annotations are needed only at
//! top-level definitions (one example needs one extra annotation).  This
//! bench prints the per-benchmark annotation counts and times the counting
//! (trivially fast — the table is the point).
use criterion::{criterion_group, criterion_main, Criterion};

use rel_suite::all_benchmarks;
use rel_syntax::parse_program;

fn annotations(c: &mut Criterion) {
    println!("\n{:<10} {:>6} {:>12}", "Benchmark", "defs", "annotations");
    let mut parsed = Vec::new();
    for b in all_benchmarks() {
        let program = parse_program(b.source).expect("benchmark parses");
        println!(
            "{:<10} {:>6} {:>12}",
            b.name,
            program.len(),
            program.annotation_count()
        );
        parsed.push(program);
    }
    c.bench_function("annotation_count", |bench| {
        bench.iter(|| {
            parsed
                .iter()
                .map(rel_syntax::Program::annotation_count)
                .sum::<usize>()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = annotations
}
criterion_main!(benches);
