//! Ablation over the §6 heuristics: how many benchmarks still check when each
//! heuristic is disabled.  (Experiment E5 in DESIGN.md.)
use criterion::{criterion_group, criterion_main, Criterion};

use birelcost::{Engine, Heuristics};
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

fn count_checked(engine: &Engine) -> usize {
    all_benchmarks()
        .iter()
        .filter(|b| b.status == VerificationStatus::Verified)
        .filter(|b| {
            let program = parse_program(b.source).expect("benchmark parses");
            engine.check_program(&program).all_ok()
        })
        .count()
}

fn ablation(c: &mut Criterion) {
    println!("\n{:<28} {:>18}", "Configuration", "benchmarks checked");
    let configs: Vec<(&str, Heuristics)> = vec![
        ("all heuristics", Heuristics::all()),
        ("without 1 (cons ∨)", Heuristics::all().without(1)),
        ("without 2 (split/nochange)", Heuristics::all().without(2)),
        ("without 4 (lazy box elim)", Heuristics::all().without(4)),
        ("without 5 (unary fallback)", Heuristics::all().without(5)),
        ("no heuristics", Heuristics::none()),
    ];
    for (name, h) in &configs {
        let engine = Engine::new().with_heuristics(*h);
        println!("{:<28} {:>18}", name, count_checked(&engine));
    }
    let engine = Engine::new();
    c.bench_function("check_verified_suite_all_heuristics", |bench| {
        bench.iter(|| count_checked(&engine));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = ablation
}
criterion_main!(benches);
