//! Microbenchmarks of the constraint pipeline (the component the paper
//! delegates to Why3 + Alt-Ergo): symbolic linear goals, existential
//! elimination, and the merge-sort recurrence handled by the numeric layer.
use criterion::{criterion_group, criterion_main, Criterion};

use rel_constraint::lemmas::big_q;
use rel_constraint::{Constr, Solver};
use rel_index::{Idx, IdxVar, Sort};

fn solver(c: &mut Criterion) {
    let universals = vec![(IdxVar::new("n"), Sort::Nat), (IdxVar::new("a"), Sort::Nat)];
    c.bench_function("solve_linear_goal", |b| {
        let goal = Constr::leq(Idx::var("a"), Idx::var("a") + Idx::var("n"));
        b.iter(|| {
            let mut s = Solver::new();
            assert!(s.entails(&universals, &Constr::Top, &goal).is_valid());
        });
    });
    c.bench_function("solve_existential_goal", |b| {
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one()),
        );
        let hyp = Constr::leq(Idx::one(), Idx::var("n"));
        b.iter(|| {
            let mut s = Solver::new();
            assert!(s.entails(&universals, &hyp, &goal).is_valid());
        });
    });
    c.bench_function("solve_msort_recurrence", |b| {
        let u = vec![
            (IdxVar::new("n"), Sort::Nat),
            (IdxVar::new("alpha"), Sort::Nat),
            (IdxVar::new("beta"), Sort::Nat),
        ];
        let hyp = Constr::leq(Idx::one(), Idx::var("alpha"))
            .and(Constr::leq(Idx::var("beta"), Idx::var("alpha")))
            .and(Constr::leq(Idx::var("alpha"), Idx::var("n")))
            .and(Constr::leq(Idx::nat(2), Idx::var("n")));
        let lhs = Idx::half_ceil(Idx::var("n"))
            + big_q(Idx::half_ceil(Idx::var("n")), Idx::var("beta"))
            + big_q(
                Idx::half_floor(Idx::var("n")),
                Idx::var("alpha") - Idx::var("beta"),
            );
        let goal = Constr::leq(lhs, big_q(Idx::var("n"), Idx::var("alpha")));
        b.iter(|| {
            let mut s = Solver::new();
            assert!(s.entails(&u, &hyp, &goal).is_valid());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = solver
}
criterion_main!(benches);
