//! Experiment E4 (DESIGN.md): empirical validation of relative-cost bounds.
//! For `map`-style workloads, measures cost(e1) − cost(e2) on inputs that
//! differ in α positions and compares the measured difference against the
//! typed bound shape (t·α with t the per-element cost).
use criterion::{criterion_group, criterion_main, Criterion};

use rel_eval::{eval, Env};
use rel_suite::generators::{apply_spine, list_literal, Workload};
use rel_syntax::parse_program;

fn relative_cost(c: &mut Criterion) {
    let program = parse_program(rel_suite::benchmark("appSum").unwrap().source).unwrap();
    let def = program.def("suml").unwrap();
    println!(
        "\n{:<8} {:>8} {:>14} {:>14}",
        "n", "alpha", "measured |Δcost|", "bound (0)"
    );
    for (n, alpha) in [(8usize, 2usize), (16, 4), (32, 8), (64, 16)] {
        let w = Workload::generate(n, alpha, 42);
        let run = |items: &[i64]| {
            let call = apply_spine(def.left.clone(), 2, list_literal(items));
            eval(&call, &Env::new()).unwrap().cost as i64
        };
        let diff = (run(&w.left) - run(&w.right)).abs();
        println!("{:<8} {:>8} {:>14} {:>14}", n, w.differing, diff, 0);
        assert_eq!(
            diff, 0,
            "suml is structure-synchronous: relative cost must be 0"
        );
    }
    let w = Workload::generate(64, 8, 7);
    c.bench_function("eval_suml_64", |bench| {
        bench.iter(|| {
            let call = apply_spine(def.left.clone(), 2, list_literal(&w.left));
            eval(&call, &Env::new()).unwrap().cost
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = relative_cost
}
criterion_main!(benches);
