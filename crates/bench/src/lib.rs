//! Shared helpers for the criterion benchmark harness (see `benches/`).
//!
//! The benchmarks regenerate the paper's evaluation: Table 1 (`table1`), the
//! annotation-effort claim (`annotations`), the empirical relative-cost
//! validation (`relative_cost`), the heuristics ablation (`ablation`) and the
//! constraint-pipeline microbenchmarks (`constraint_solver`).
