//! Runtime values and environments.

use std::fmt;
use std::rc::Rc;

use rel_syntax::{Expr, Var};

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A list of values.
    List(Vec<Value>),
    /// A pair.
    Pair(Box<Value>, Box<Value>),
    /// A (possibly recursive) function closure.  For plain lambdas `fixvar`
    /// is `None`; for `fix f(x). e` it is `Some(f)` so the closure can be
    /// re-bound on application.
    Closure {
        /// Optional recursive self-reference.
        fixvar: Option<Var>,
        /// The parameter.
        param: Var,
        /// The body.
        body: Rc<Expr>,
        /// The captured environment.
        env: Env,
    },
    /// A suspended index abstraction `Λ. e` (indices are erased at runtime,
    /// but the body's evaluation is delayed until `e []`).
    Suspension {
        /// The suspended body.
        body: Rc<Expr>,
        /// The captured environment.
        env: Env,
    },
}

impl Value {
    /// Builds a list value from elements.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Builds an integer-list value (convenient for workloads).
    pub fn int_list(items: impl IntoIterator<Item = i64>) -> Value {
        Value::List(items.into_iter().map(Value::Int).collect())
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a list of integers, if this is one.
    pub fn as_int_list(&self) -> Option<Vec<i64>> {
        match self {
            Value::List(items) => items.iter().map(Value::as_int).collect(),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Closure { .. } => write!(f, "<closure>"),
            Value::Suspension { .. } => write!(f, "<suspension>"),
        }
    }
}

/// A persistent evaluation environment (immutable linked list of bindings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    head: Option<Rc<Node>>,
}

#[derive(Debug, PartialEq)]
struct Node {
    name: Var,
    value: Value,
    next: Option<Rc<Node>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Returns an environment extended with one binding.
    pub fn bind(&self, name: Var, value: Value) -> Env {
        Env {
            head: Some(Rc::new(Node {
                name,
                value,
                next: self.head.clone(),
            })),
        }
    }

    /// Looks up a variable (innermost binding wins).
    pub fn lookup(&self, name: &Var) -> Option<&Value> {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = node.next.as_deref();
        }
        None
    }

    /// Builds an environment from `(name, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Value)>) -> Env {
        pairs
            .into_iter()
            .fold(Env::new(), |env, (n, v)| env.bind(n, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environments_are_persistent() {
        let base = Env::new();
        let extended = base.bind(Var::new("x"), Value::Int(1));
        assert!(base.lookup(&Var::new("x")).is_none());
        assert_eq!(extended.lookup(&Var::new("x")), Some(&Value::Int(1)));
    }

    #[test]
    fn innermost_binding_wins() {
        let env = Env::new()
            .bind(Var::new("x"), Value::Int(1))
            .bind(Var::new("x"), Value::Int(2));
        assert_eq!(env.lookup(&Var::new("x")), Some(&Value::Int(2)));
    }

    #[test]
    fn value_helpers() {
        let v = Value::int_list([1, 2, 3]);
        assert_eq!(v.as_int_list(), Some(vec![1, 2, 3]));
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::int_list([1]).to_string(), "[1]");
    }
}
