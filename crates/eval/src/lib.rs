//! Cost-instrumented big-step evaluator.
//!
//! RelCost's soundness theorem speaks about an operational semantics that
//! charges evaluation costs at elimination forms.  This crate implements that
//! semantics for the surface language: [`eval`] returns both the value and
//! the total cost of an expression, using the same [`CostModel`] constants as
//! the unary typing rules.
//!
//! The evaluator is used by the test suite and the benchmark harness to
//! validate relative-cost bounds empirically: for two runs of a program on
//! inputs that differ in at most `α` positions, the measured
//! `cost(e₁) − cost(e₂)` never exceeds the bound established by the type
//! checker (experiment E4 of DESIGN.md).

pub mod interp;
pub mod value;

pub use interp::{eval, eval_with_limit, EvalConfig, EvalOutcome, RuntimeError};
pub use rel_unary::CostModel;
pub use value::{Env, Value};
