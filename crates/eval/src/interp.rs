//! The big-step, cost-counting interpreter.

use std::fmt;
use std::rc::Rc;

use rel_syntax::{Expr, PrimOp};
use rel_unary::CostModel;

use crate::value::{Env, Value};

/// Configuration of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// The cost model charged at elimination forms.
    pub cost_model: CostModel,
    /// Maximum number of charged steps before aborting (guards against
    /// accidental divergence in tests).
    pub step_limit: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            cost_model: CostModel::standard(),
            step_limit: 10_000_000,
        }
    }
}

/// The outcome of a successful evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// The resulting value.
    pub value: Value,
    /// The total evaluation cost under the configured cost model.
    pub cost: u64,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A variable had no binding at runtime (should be prevented by typing).
    UnboundVariable(String),
    /// An elimination form was applied to a value of the wrong shape.
    TypeMismatch(String),
    /// The step limit was exceeded.
    StepLimitExceeded(u64),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundVariable(x) => write!(f, "unbound variable `{x}` at runtime"),
            RuntimeError::TypeMismatch(msg) => write!(f, "runtime type mismatch: {msg}"),
            RuntimeError::StepLimitExceeded(n) => {
                write!(f, "evaluation exceeded the step limit of {n}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

struct Interp {
    config: EvalConfig,
    cost: u64,
}

impl Interp {
    fn charge(&mut self, amount: u64) -> Result<(), RuntimeError> {
        self.cost += amount;
        if self.cost > self.config.step_limit {
            Err(RuntimeError::StepLimitExceeded(self.config.step_limit))
        } else {
            Ok(())
        }
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        match e {
            Expr::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| RuntimeError::UnboundVariable(x.name().to_string())),
            Expr::Unit => Ok(Value::Unit),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Nil => Ok(Value::List(Vec::new())),
            Expr::Cons(h, t) => {
                let head = self.eval(h, env)?;
                let tail = self.eval(t, env)?;
                match tail {
                    Value::List(mut items) => {
                        items.insert(0, head);
                        Ok(Value::List(items))
                    }
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "cons onto a non-list value `{other}`"
                    ))),
                }
            }
            Expr::Pair(a, b) => Ok(Value::Pair(
                Box::new(self.eval(a, env)?),
                Box::new(self.eval(b, env)?),
            )),
            Expr::Fst(e) => {
                self.charge(self.config.cost_model.proj)?;
                match self.eval(e, env)? {
                    Value::Pair(a, _) => Ok(*a),
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "fst of a non-pair value `{other}`"
                    ))),
                }
            }
            Expr::Snd(e) => {
                self.charge(self.config.cost_model.proj)?;
                match self.eval(e, env)? {
                    Value::Pair(_, b) => Ok(*b),
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "snd of a non-pair value `{other}`"
                    ))),
                }
            }
            Expr::Lam(x, body) => Ok(Value::Closure {
                fixvar: None,
                param: x.clone(),
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            Expr::Fix(f, x, body) => Ok(Value::Closure {
                fixvar: Some(f.clone()),
                param: x.clone(),
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            Expr::ILam(body) => Ok(Value::Suspension {
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            Expr::IApp(e) => {
                self.charge(self.config.cost_model.index_elim)?;
                match self.eval(e, env)? {
                    Value::Suspension { body, env } => self.eval(&body, &env),
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "index application of a non-suspension value `{other}`"
                    ))),
                }
            }
            Expr::App(f, a) => {
                let fun = self.eval(f, env)?;
                let arg = self.eval(a, env)?;
                self.charge(self.config.cost_model.app)?;
                self.apply(fun, arg)
            }
            Expr::If(cond, then_branch, else_branch) => {
                let c = self.eval(cond, env)?;
                self.charge(self.config.cost_model.if_then_else)?;
                match c {
                    Value::Bool(true) => self.eval(then_branch, env),
                    Value::Bool(false) => self.eval(else_branch, env),
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "conditional on a non-boolean value `{other}`"
                    ))),
                }
            }
            Expr::CaseList {
                scrut,
                nil_branch,
                head,
                tail,
                cons_branch,
            } => {
                let v = self.eval(scrut, env)?;
                self.charge(self.config.cost_model.case_list)?;
                match v {
                    Value::List(items) if items.is_empty() => self.eval(nil_branch, env),
                    Value::List(mut items) => {
                        let h = items.remove(0);
                        let env = env
                            .bind(head.clone(), h)
                            .bind(tail.clone(), Value::List(items));
                        self.eval(cons_branch, &env)
                    }
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "case analysis on a non-list value `{other}`"
                    ))),
                }
            }
            Expr::Let(x, bound, body) => {
                let v = self.eval(bound, env)?;
                self.charge(self.config.cost_model.let_bind)?;
                self.eval(body, &env.bind(x.clone(), v))
            }
            Expr::Prim(op, args) => {
                let values: Result<Vec<Value>, RuntimeError> =
                    args.iter().map(|a| self.eval(a, env)).collect();
                let values = values?;
                self.charge(self.config.cost_model.prim)?;
                prim(*op, &values)
            }
            // Index-level constructs are erased at runtime (cost 0).
            Expr::Pack(e) | Expr::CElim(e) | Expr::Anno(e, _, _) => self.eval(e, env),
            Expr::Unpack(e1, x, e2) | Expr::CLet(e1, x, e2) => {
                let v = self.eval(e1, env)?;
                self.charge(self.config.cost_model.index_elim)?;
                self.eval(e2, &env.bind(x.clone(), v))
            }
        }
    }

    fn apply(&mut self, fun: Value, arg: Value) -> Result<Value, RuntimeError> {
        match fun {
            Value::Closure {
                fixvar,
                param,
                body,
                env,
            } => {
                let env = match &fixvar {
                    Some(f) => env.bind(
                        f.clone(),
                        Value::Closure {
                            fixvar: fixvar.clone(),
                            param: param.clone(),
                            body: body.clone(),
                            env: env.clone(),
                        },
                    ),
                    None => env.clone(),
                };
                let env = env.bind(param, arg);
                self.eval(&body, &env)
            }
            other => Err(RuntimeError::TypeMismatch(format!(
                "application of a non-function value `{other}`"
            ))),
        }
    }
}

fn prim(op: PrimOp, args: &[Value]) -> Result<Value, RuntimeError> {
    let int = |v: &Value| {
        v.as_int().ok_or_else(|| {
            RuntimeError::TypeMismatch(format!("expected an integer operand, found `{v}`"))
        })
    };
    let boolean = |v: &Value| {
        v.as_bool().ok_or_else(|| {
            RuntimeError::TypeMismatch(format!("expected a boolean operand, found `{v}`"))
        })
    };
    match op {
        PrimOp::Add => Ok(Value::Int(int(&args[0])? + int(&args[1])?)),
        PrimOp::Sub => Ok(Value::Int(int(&args[0])? - int(&args[1])?)),
        PrimOp::Mul => Ok(Value::Int(int(&args[0])? * int(&args[1])?)),
        PrimOp::Div => {
            let d = int(&args[1])?;
            Ok(Value::Int(if d == 0 { 0 } else { int(&args[0])? / d }))
        }
        PrimOp::Mod => {
            let d = int(&args[1])?;
            Ok(Value::Int(if d == 0 { 0 } else { int(&args[0])? % d }))
        }
        PrimOp::Eq => Ok(Value::Bool(int(&args[0])? == int(&args[1])?)),
        PrimOp::Leq => Ok(Value::Bool(int(&args[0])? <= int(&args[1])?)),
        PrimOp::Lt => Ok(Value::Bool(int(&args[0])? < int(&args[1])?)),
        PrimOp::And => Ok(Value::Bool(boolean(&args[0])? && boolean(&args[1])?)),
        PrimOp::Or => Ok(Value::Bool(boolean(&args[0])? || boolean(&args[1])?)),
        PrimOp::Not => Ok(Value::Bool(!boolean(&args[0])?)),
    }
}

/// Evaluates an expression in the given environment with the default
/// configuration.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for unbound variables, shape mismatches, or
/// when the step limit is exceeded.
pub fn eval(e: &Expr, env: &Env) -> Result<EvalOutcome, RuntimeError> {
    eval_with_limit(e, env, EvalConfig::default())
}

/// Evaluates an expression with an explicit configuration.
///
/// # Errors
///
/// See [`eval`].
pub fn eval_with_limit(
    e: &Expr,
    env: &Env,
    config: EvalConfig,
) -> Result<EvalOutcome, RuntimeError> {
    let mut interp = Interp { config, cost: 0 };
    let value = interp.eval(e, env)?;
    Ok(EvalOutcome {
        value,
        cost: interp.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_expr;

    fn run(src: &str) -> EvalOutcome {
        let e = parse_expr(src).unwrap();
        eval(&e, &Env::new()).unwrap()
    }

    #[test]
    fn literals_cost_nothing() {
        let out = run("42");
        assert_eq!(out.value, Value::Int(42));
        assert_eq!(out.cost, 0);
        assert_eq!(run("true").value, Value::Bool(true));
        assert_eq!(run("nil").value, Value::List(vec![]));
    }

    #[test]
    fn primitives_and_conditionals_charge_costs() {
        let out = run("1 + 2 * 3");
        assert_eq!(out.value, Value::Int(7));
        assert_eq!(out.cost, 2);
        let out = run("if 1 <= 2 then 10 else 20");
        assert_eq!(out.value, Value::Int(10));
        // one prim (<=) + one if
        assert_eq!(out.cost, 2);
    }

    #[test]
    fn application_charges_one_step() {
        let out = run("(lam x. x + 1) 5");
        assert_eq!(out.value, Value::Int(6));
        // one app + one prim
        assert_eq!(out.cost, 2);
    }

    #[test]
    fn recursion_over_lists() {
        // length of [5, 6, 7]
        let out = run(
            "(fix len(l). case l of nil -> 0 | h :: tl -> 1 + len tl) cons(5, cons(6, cons(7, nil)))",
        );
        assert_eq!(out.value, Value::Int(3));
        // 4 cases + 4 apps (initial + 3 recursive) + 3 prims = 11
        assert_eq!(out.cost, 11);
    }

    #[test]
    fn suspensions_delay_index_bodies() {
        let out = run("(Lam. lam x. x) [] 9");
        assert_eq!(out.value, Value::Int(9));
        assert_eq!(out.cost, 1);
    }

    #[test]
    fn pairs_lets_and_projections() {
        let out = run("let p = (1, 2) in fst p + snd p");
        assert_eq!(out.value, Value::Int(3));
        // let + fst + snd + prim
        assert_eq!(out.cost, 4);
    }

    #[test]
    fn pack_unpack_and_clet_are_cost_free() {
        let out = run("unpack (pack 5) as x in x");
        assert_eq!(out.value, Value::Int(5));
        assert_eq!(out.cost, 0);
        let out = run("clet 5 as x in x");
        assert_eq!(out.value, Value::Int(5));
        assert_eq!(out.cost, 0);
    }

    #[test]
    fn runtime_errors_are_reported() {
        let e = parse_expr("missing + 1").unwrap();
        assert!(matches!(
            eval(&e, &Env::new()),
            Err(RuntimeError::UnboundVariable(_))
        ));
        let e = parse_expr("1 2").unwrap();
        assert!(matches!(
            eval(&e, &Env::new()),
            Err(RuntimeError::TypeMismatch(_))
        ));
    }

    #[test]
    fn step_limit_prevents_divergence() {
        let e = parse_expr("(fix loop(x). loop x) 0").unwrap();
        // Keep the limit small: the interpreter recurses on the Rust stack,
        // so divergence must be cut off well before the stack is exhausted.
        let config = EvalConfig {
            step_limit: 200,
            ..EvalConfig::default()
        };
        assert!(matches!(
            eval_with_limit(&e, &Env::new(), config),
            Err(RuntimeError::StepLimitExceeded(_))
        ));
    }

    #[test]
    fn relative_cost_of_equal_runs_is_zero() {
        // The same program on the same input always has the same cost.
        let src = "(fix len(l). case l of nil -> 0 | h :: tl -> 1 + len tl) cons(1, cons(2, nil))";
        let a = run(src);
        let b = run(src);
        assert_eq!(a.cost, b.cost);
    }
}
