//! `rel-persist` — warm-start persistence for the BiRelCost pipeline.
//!
//! The PR-1 validity cache and the PR-2 compiled-program memo make *warm*
//! checks dramatically cheaper than cold ones, but both lived only in
//! process memory: every `birelcost check` and every daemon restart started
//! cold.  This crate makes the warm state survive the process, the way
//! modular relational verifiers reuse previously discharged obligations
//! across runs: a [`Snapshot`] captures the validity cache, the program
//! memo's keys and the engine's per-definition input hashes, serializes
//! them with an in-tree binary codec (the workspace is offline — no serde),
//! and verifies magic / format version / engine fingerprint / checksum
//! before trusting anything read back.
//!
//! Since PR 7 the snapshot is the *floor*, not the whole story: [`wal`]
//! layers an append-only verdict log (`rel-wal`) under it, so every cache
//! store is durable the moment it happens instead of at the next timer
//! flush.  Recovery replays `snapshot + WAL suffix` with torn-tail
//! truncation, and compaction folds the log back into the snapshot through
//! the same atomic temp+rename save.  All disk traffic goes through the
//! [`faultfs::FaultFs`] seam — `std::fs` in production, an in-memory
//! fault-injecting implementation in the crash-safety tests.
//!
//! Soundness is inherited from the caches being persisted: verdicts are pure
//! functions of the query and the solver configuration (the fingerprint in
//! the header and in every [`rel_constraint::QueryKey`]), so replaying them
//! into a same-configuration process is exactly as sound as the in-memory
//! memoization.  A snapshot that fails *any* validation is rejected whole —
//! the caller warns and starts cold; a stale or corrupt cache file can slow
//! a run down but never change a verdict.

pub mod codec;
pub mod faultfs;
pub mod snapshot;
pub mod wal;

pub use codec::{DecodeError, Reader, Writer};
pub use faultfs::{AppendFile, Fault, FaultFs, FaultScript, FaultyFs, RealFs, UnsyncedSurvival};
pub use snapshot::{Snapshot, SnapshotError, FORMAT_VERSION, MAGIC};
pub use wal::{
    encode_frame, replay, sweep_stale_tmp, validate_frame, wal_path, FrameError, Recovery,
    ReplayStats, Wal, WalLimits, WalRecord, WalReplay, WalStats, WalStore, MAX_RECORD_LEN,
    WAL_MAGIC, WAL_VERSION,
};
