//! `FaultFs` — the file-system seam of the persistence layer.
//!
//! Everything `rel-persist` does to disk (snapshot reads, atomic
//! temp+rename replaces, WAL appends and fsyncs, stale-tmp sweeps) goes
//! through this trait.  Production uses [`RealFs`], a thin passthrough to
//! `std::fs`.  Tests use [`FaultyFs`], an in-memory file system that
//! injects the failures a real disk produces at the worst moments: short
//! writes, `ENOSPC`, failing fsyncs, and — the important one — a simulated
//! process kill at *every single operation* of a schedule, after which the
//! test reopens the surviving bytes and asserts recovery holds the
//! invariant (DESIGN.md §9.4).
//!
//! The faulty implementation models durability honestly: appended bytes are
//! *volatile* until the file is synced, and a crash drops an arbitrary
//! suffix of the unsynced bytes (the caller chooses how much survives, so a
//! harness can sweep every torn-write boundary).  Renames are atomic, but
//! the renamed file keeps its own synced/unsynced split — exactly the
//! semantics that make "write, fsync, *then* rename" the only safe order.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open append-only file handle.
pub trait AppendFile: Send {
    /// Appends bytes at the end of the file.  On failure, any prefix may
    /// have been written (a short write) — callers must treat the file as
    /// having a torn tail until the next successful replay.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces everything appended so far to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The file operations the persistence layer needs, made injectable.
pub trait FaultFs: Send + Sync + fmt::Debug {
    /// Reads a whole file.  `ErrorKind::NotFound` means the file does not
    /// exist (a legitimate cold start).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Opens (creating if missing) a file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>>;
    /// Replaces `path` atomically: write a temporary sibling in full, sync
    /// it, rename it over `path`.  A crash at any point leaves either the
    /// old content or the new content at `path`, never a mixture (it may
    /// leave a stray `*.tmp.*` sibling — see [`sweep_stale_tmp`]).
    ///
    /// [`sweep_stale_tmp`]: crate::wal::sweep_stale_tmp
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Removes a file (`NotFound` is an error, callers ignore it when the
    /// file is optional).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// The file names (not paths) in a directory.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
}

// --------------------------------------------------------------------------
// Production passthrough
// --------------------------------------------------------------------------

/// The production [`FaultFs`]: `std::fs`, with the same atomic temp+rename
/// dance [`Snapshot::save`](crate::Snapshot::save) has always used.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealAppend(std::fs::File);

impl AppendFile for RealAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl FaultFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealAppend(file)))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = tmp_sibling(path, SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed))?;
        let result = (|| {
            // Write + fsync *before* the rename: without the sync, a power
            // loss shortly after the rename can surface the new name with
            // truncated content on common filesystems.
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)?;
            // Best-effort directory sync so the rename itself is durable.
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Ok(dir) = std::fs::File::open(dir) {
                    let _ = dir.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            // Best-effort cleanup: never leave a stray tmp behind a failure.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
}

/// The `<file>.tmp.<pid>.<seq>` sibling name used by every atomic replace
/// (and therefore the shape [`sweep_stale_tmp`] reaps).
///
/// [`sweep_stale_tmp`]: crate::wal::sweep_stale_tmp
pub fn tmp_sibling(path: &Path, seq: u64) -> io::Result<PathBuf> {
    match path.file_name() {
        Some(name) => {
            let mut tmp_name = name.to_os_string();
            tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
            Ok(path.with_file_name(tmp_name))
        }
        None => Err(io::Error::other("path has no file name")),
    }
}

// --------------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------------

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The process dies at this operation: it fails, every later operation
    /// fails, and unsynced bytes are dropped per [`UnsyncedSurvival`].
    Crash,
    /// The write applies only the first `n` bytes, then errors (a short
    /// write / torn append).
    ShortWrite(usize),
    /// The operation fails with an out-of-space error, writing nothing.
    Enospc,
    /// The fsync fails; the bytes stay volatile.
    SyncFail,
}

/// How much of a file's *unsynced* suffix survives a [`Fault::Crash`].
/// Sweeping `Prefix(k)` over every k is what drives recovery through every
/// torn-write boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnsyncedSurvival {
    /// Everything unsynced is lost (the conservative disk).
    #[default]
    None,
    /// Everything unsynced happens to survive (the lucky disk).
    All,
    /// The first `k` unsynced bytes survive per file (a torn write).
    Prefix(usize),
}

/// A fault schedule: which numbered operation fails, and how.  Operations
/// are counted across the whole [`FaultyFs`] in call order, so "crash at
/// op N for every N" enumerates every crash point of a deterministic run.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// Faults keyed by operation index (0-based).
    pub at_op: BTreeMap<u64, Fault>,
    /// Crash semantics for unsynced bytes.
    pub unsynced: UnsyncedSurvival,
}

impl FaultScript {
    /// No faults (used to count a run's operations).
    pub fn none() -> FaultScript {
        FaultScript::default()
    }

    /// Crash at operation `op`, with the given unsynced-survival policy.
    pub fn crash_at(op: u64, unsynced: UnsyncedSurvival) -> FaultScript {
        let mut s = FaultScript {
            unsynced,
            ..FaultScript::default()
        };
        s.at_op.insert(op, Fault::Crash);
        s
    }

    /// A single non-crash fault at operation `op`.
    pub fn fault_at(op: u64, fault: Fault) -> FaultScript {
        let mut s = FaultScript::default();
        s.at_op.insert(op, fault);
        s
    }
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes `[0, synced_len)` are durable; the rest is volatile.
    synced_len: usize,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, MemFile>,
    script: FaultScript,
    ops: u64,
    crashed: bool,
}

impl FaultState {
    /// Charges one operation against the script.  Returns the fault to
    /// apply, if any; after a crash every operation fails.
    fn charge(&mut self) -> Result<Option<Fault>, io::Error> {
        if self.crashed {
            return Err(io::Error::other("simulated crash: process is dead"));
        }
        let op = self.ops;
        self.ops += 1;
        match self.script.at_op.get(&op).copied() {
            Some(Fault::Crash) => {
                self.crash();
                Err(io::Error::other("simulated crash (injected)"))
            }
            other => Ok(other),
        }
    }

    fn crash(&mut self) {
        self.crashed = true;
        for file in self.files.values_mut() {
            let keep = match self.script.unsynced {
                UnsyncedSurvival::None => file.synced_len,
                UnsyncedSurvival::All => file.data.len(),
                UnsyncedSurvival::Prefix(k) => (file.synced_len + k).min(file.data.len()),
            };
            file.data.truncate(keep);
            file.synced_len = file.data.len();
        }
    }
}

/// An in-memory [`FaultFs`] driven by a [`FaultScript`].  Cheap to clone
/// (shared state): clones handed to the code under test and kept by the
/// harness observe the same files.
#[derive(Debug, Clone, Default)]
pub struct FaultyFs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultyFs {
    /// An empty, fault-free file system.
    pub fn new() -> FaultyFs {
        FaultyFs::default()
    }

    /// An empty file system with a fault schedule.
    pub fn with_script(script: FaultScript) -> FaultyFs {
        let fs = FaultyFs::new();
        fs.state.lock().unwrap().script = script;
        fs
    }

    /// Operations performed so far (the bound for a crash-point sweep).
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Whether a [`Fault::Crash`] has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// The bytes currently visible for a file (tests inspecting state).
    pub fn bytes_of(&self, path: &Path) -> Option<Vec<u8>> {
        self.state
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.data.clone())
    }

    /// Overwrites a file's bytes directly, fully synced (tests planting
    /// corrupt input without charging script operations).
    pub fn plant(&self, path: &Path, bytes: Vec<u8>) {
        let mut s = self.state.lock().unwrap();
        let len = bytes.len();
        s.files.insert(
            path.to_path_buf(),
            MemFile {
                data: bytes,
                synced_len: len,
            },
        );
    }

    /// The disk as a fresh, fault-free [`FaultyFs`] holding what survived —
    /// what a restarted process would find.  Usable after a crash or at any
    /// quiescent point.
    pub fn surviving(&self) -> FaultyFs {
        let mut state = self.state.lock().unwrap();
        if !state.crashed {
            // A kill outside any schedule still drops unsynced bytes.
            let script = std::mem::take(&mut state.script);
            let keep_script = script.clone();
            state.script = keep_script;
            let unsynced = script.unsynced;
            for file in state.files.values_mut() {
                let keep = match unsynced {
                    UnsyncedSurvival::None => file.synced_len,
                    UnsyncedSurvival::All => file.data.len(),
                    UnsyncedSurvival::Prefix(k) => (file.synced_len + k).min(file.data.len()),
                };
                file.data.truncate(keep);
                file.synced_len = file.data.len();
            }
        }
        let survivor = FaultyFs::new();
        survivor.state.lock().unwrap().files = state.files.clone();
        survivor
    }
}

struct FaultyAppend {
    fs: FaultyFs,
    path: PathBuf,
}

impl AppendFile for FaultyAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.fs.state.lock().unwrap();
        if s.crashed {
            return Err(io::Error::other("simulated crash: process is dead"));
        }
        // A crash *during* an append first puts the in-flight bytes into the
        // unsynced tail — the survival policy then decides how much of that
        // tail a restarted process finds (the torn-write boundary sweep).
        let op = s.ops;
        if s.script.at_op.get(&op).copied() == Some(Fault::Crash) {
            s.ops += 1;
            let file = s.files.entry(self.path.clone()).or_default();
            file.data.extend_from_slice(bytes);
            s.crash();
            return Err(io::Error::other("simulated crash (injected)"));
        }
        let fault = s.charge()?;
        let file = s.files.entry(self.path.clone()).or_default();
        match fault {
            None => {
                file.data.extend_from_slice(bytes);
                Ok(())
            }
            Some(Fault::ShortWrite(n)) => {
                file.data.extend_from_slice(&bytes[..n.min(bytes.len())]);
                Err(io::Error::other("short write (injected)"))
            }
            Some(Fault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "no space left on device (injected)",
            )),
            Some(Fault::SyncFail) | Some(Fault::Crash) => {
                // SyncFail on a write degrades to a plain failure; Crash was
                // already handled by charge().
                Err(io::Error::other("write failed (injected)"))
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.fs.state.lock().unwrap();
        match s.charge()? {
            Some(_) => Err(io::Error::other("fsync failed (injected)")),
            None => {
                if let Some(file) = s.files.get_mut(&self.path) {
                    file.synced_len = file.data.len();
                }
                Ok(())
            }
        }
    }
}

impl FaultFs for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock().unwrap();
        if let Some(fault) = s.charge()? {
            return Err(io::Error::other(format!(
                "read failed (injected {fault:?})"
            )));
        }
        match s.files.get(path) {
            Some(f) => Ok(f.data.clone()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let mut s = self.state.lock().unwrap();
        if let Some(fault) = s.charge()? {
            return Err(io::Error::other(format!(
                "open failed (injected {fault:?})"
            )));
        }
        s.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultyAppend {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Decomposed into the same crash-point-addressable steps the real
        // dance performs: write the tmp, sync it, rename it.  A crash after
        // the write but before the rename leaves the stale tmp behind —
        // exactly what the startup sweep exists to reap.
        let mut s = self.state.lock().unwrap();
        let seq = s.ops; // unique enough per run
        let tmp = tmp_sibling(path, seq)?;

        // Step 1: create + write the tmp file.
        let fault = s.charge()?;
        match fault {
            None => {
                s.files.insert(
                    tmp.clone(),
                    MemFile {
                        data: bytes.to_vec(),
                        synced_len: 0,
                    },
                );
            }
            Some(Fault::ShortWrite(n)) => {
                s.files.insert(
                    tmp.clone(),
                    MemFile {
                        data: bytes[..n.min(bytes.len())].to_vec(),
                        synced_len: 0,
                    },
                );
                s.files.remove(&tmp);
                return Err(io::Error::other("short write (injected)"));
            }
            Some(Fault::Enospc) => {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "no space left on device (injected)",
                ));
            }
            Some(_) => return Err(io::Error::other("write failed (injected)")),
        }

        // Step 2: fsync the tmp.
        if let Err(e) = s.charge().and_then(|fault| match fault {
            None => Ok(()),
            Some(_) => Err(io::Error::other("fsync failed (injected)")),
        }) {
            if !s.crashed {
                s.files.remove(&tmp); // cleanup path of the real dance
            }
            return Err(e);
        }
        if let Some(f) = s.files.get_mut(&tmp) {
            f.synced_len = f.data.len();
        }

        // Step 3: rename over the destination (atomic).
        if let Err(e) = s.charge().and_then(|fault| match fault {
            None => Ok(()),
            Some(_) => Err(io::Error::other("rename failed (injected)")),
        }) {
            if !s.crashed {
                s.files.remove(&tmp);
            }
            return Err(e);
        }
        let file = s.files.remove(&tmp).expect("tmp written above");
        s.files.insert(path.to_path_buf(), file);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if let Some(fault) = s.charge()? {
            return Err(io::Error::other(format!(
                "remove failed (injected {fault:?})"
            )));
        }
        match s.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut s = self.state.lock().unwrap();
        if let Some(fault) = s.charge()? {
            return Err(io::Error::other(format!(
                "list failed (injected {fault:?})"
            )));
        }
        Ok(s.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
            .map(str::to_string)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_survive_only_when_synced() {
        let fs = FaultyFs::new();
        let path = Path::new("/d/wal");
        let mut f = fs.open_append(path).unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" volatile").unwrap();
        // No sync: a kill now keeps only the synced prefix.
        let survivor = fs.surviving();
        assert_eq!(survivor.read(path).unwrap(), b"durable");
    }

    #[test]
    fn crash_keeps_a_chosen_prefix_of_unsynced_bytes() {
        for keep in 0..=4usize {
            let fs =
                FaultyFs::with_script(FaultScript::crash_at(3, UnsyncedSurvival::Prefix(keep)));
            let path = Path::new("/d/wal");
            let mut f = fs.open_append(path).unwrap(); // op 0
            f.append(b"ok").unwrap(); // op 1
            f.sync().unwrap(); // op 2
            assert!(f.append(b"torn").is_err()); // op 3: crash
            let survivor = fs.surviving();
            let bytes = survivor.read(path).unwrap();
            assert_eq!(bytes, [b"ok".as_slice(), &b"torn"[..keep]].concat());
        }
    }

    #[test]
    fn short_write_applies_a_prefix_then_errors() {
        let fs = FaultyFs::with_script(FaultScript::fault_at(1, Fault::ShortWrite(2)));
        let path = Path::new("/d/wal");
        let mut f = fs.open_append(path).unwrap();
        assert!(f.append(b"abcdef").is_err());
        assert_eq!(fs.bytes_of(path).unwrap(), b"ab");
        // The file system survives the fault: later ops succeed.
        f.append(b"xy").unwrap();
        assert_eq!(fs.bytes_of(path).unwrap(), b"abxy");
    }

    #[test]
    fn write_atomic_crash_mid_dance_leaves_old_content_and_a_stale_tmp() {
        let path = Path::new("/d/snap");
        // Ops: 0 open, 1 append, 2 sync, then write_atomic = 3 write-tmp,
        // 4 sync-tmp, 5 rename.  Crash at the sync-tmp step.
        let fs = FaultyFs::with_script(FaultScript::crash_at(4, UnsyncedSurvival::None));
        let mut f = fs.open_append(path).unwrap();
        f.append(b"old").unwrap();
        f.sync().unwrap();
        assert!(fs.write_atomic(path, b"new-content").is_err());
        let survivor = fs.surviving();
        assert_eq!(survivor.read(path).unwrap(), b"old", "rename never ran");
        let names = survivor.list_dir(Path::new("/d")).unwrap();
        assert!(
            names.iter().any(|n| n.starts_with("snap.tmp.")),
            "stale tmp must be visible to the startup sweep: {names:?}"
        );
    }

    #[test]
    fn write_atomic_completed_rename_is_durable() {
        let fs = FaultyFs::new();
        let path = Path::new("/d/snap");
        fs.write_atomic(path, b"v2").unwrap();
        let survivor = fs.surviving();
        assert_eq!(survivor.read(path).unwrap(), b"v2");
        assert_eq!(survivor.list_dir(Path::new("/d")).unwrap(), vec!["snap"]);
    }

    #[test]
    fn enospc_and_sync_failures_are_reported_not_panics() {
        let fs = FaultyFs::with_script(FaultScript::fault_at(1, Fault::Enospc));
        let mut f = fs.open_append(Path::new("/d/wal")).unwrap();
        let e = f.append(b"x").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);

        let fs = FaultyFs::with_script(FaultScript::fault_at(2, Fault::SyncFail));
        let mut f = fs.open_append(Path::new("/d/wal")).unwrap();
        f.append(b"x").unwrap();
        assert!(f.sync().is_err());
        // Unsynced bytes are then lost on a kill.
        assert_eq!(fs.surviving().read(Path::new("/d/wal")).unwrap(), b"");
    }
}
