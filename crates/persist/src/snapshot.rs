//! The snapshot format: one file carrying the warm state of a checking
//! process.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"BRCS"
//! 4       4     format version (u32 LE)
//! 8       8     engine fingerprint (u64 LE) — Engine::fingerprint()
//! 16      8     FNV-1a checksum of the payload (u64 LE)
//! 24      …     payload (codec.rs varint encoding)
//! ```
//!
//! The payload is three length-prefixed sections: validity-cache verdicts
//! (full [`QueryKey`] + [`Validity`]), definition input hashes with their
//! stored verdicts (the [`DefIndex`]), and compiled-program keys (the
//! bytecode itself is *not* stored — compilation is deterministic and cheap,
//! so loading recompiles each key into the shared program memo).
//!
//! Loading is strict: wrong magic, unsupported version, mismatched
//! fingerprint, bad checksum or any payload decode failure rejects the whole
//! file with a [`SnapshotError`].  Callers treat every rejection the same
//! way — warn and start cold.  See DESIGN.md §6.

use std::fmt;
use std::hash::Hasher;
use std::io;
use std::path::Path;

use birelcost::{DefIndex, StoredDef};
use rel_constraint::{
    Constr, Fnv1a, ProgramKey, Provenance, Quantified, QueryKey, ShardedValidityCache,
    SharedProgramCache, Validity,
};
use rel_index::{Extended, Idx, IdxEnv, IdxVar, Rational, Sort};

use crate::codec::{DecodeError, Reader, Writer};

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"BRCS";

/// The current snapshot format version.  Bump on any change to the payload
/// encoding *or* to checking semantics that the engine fingerprint does not
/// capture (the fingerprint covers configuration, not code).
///
/// Version history:
/// * 1 — initial format.
/// * 2 — verdict provenance: `Valid` carries proved vs grid-checked
///   ([`Provenance`]), and [`StoredDef`] records whether the definition's
///   verdict was proved.  Version-1 snapshots cannot express the
///   distinction, so they are rejected (cold start) rather than loaded
///   with guessed provenance.
pub const FORMAT_VERSION: u32 = 2;

/// Nesting cap while decoding recursive terms: deeper input is corrupt (or
/// adversarial) — real constraints nest a few dozen levels at most, and the
/// cap turns a stack overflow into a clean decode error.
pub(crate) const MAX_DEPTH: u32 = 1_000;

/// Why a snapshot file was rejected.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The snapshot was produced under a different engine configuration.
    FingerprintMismatch {
        /// The fingerprint recorded in the file.
        found: u64,
        /// The fingerprint of the loading engine.
        expected: u64,
    },
    /// The payload checksum does not match (truncation or bit rot).
    ChecksumMismatch,
    /// The payload itself is malformed.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (expected {FORMAT_VERSION})"
                )
            }
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot was produced under engine fingerprint {found:016x}, \
                 this engine is {expected:016x}"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> SnapshotError {
        SnapshotError::Corrupt(e.0)
    }
}

/// The warm state of one checking process, as written to / read from disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// The engine fingerprint the state was recorded under.
    pub fingerprint: u64,
    /// Memoized entailment verdicts (the validity cache).
    pub verdicts: Vec<(QueryKey, Validity)>,
    /// Definition input digests `(input_hash, verify_hash)` and their
    /// stored verdicts (the def index).
    pub defs: Vec<(u64, u64, StoredDef)>,
    /// Keys of compiled numeric queries (the program memo).
    pub programs: Vec<ProgramKey>,
}

impl Snapshot {
    /// Captures the current warm state of a cache / program-memo / def-index
    /// triple.
    pub fn capture(
        fingerprint: u64,
        cache: &ShardedValidityCache,
        programs: &SharedProgramCache,
        defs: &DefIndex,
    ) -> Snapshot {
        Snapshot {
            fingerprint,
            verdicts: cache.export_entries(),
            defs: defs.export(),
            programs: programs.export_keys(),
        }
    }

    /// Replays the snapshot into live caches: verdicts are stored, program
    /// keys recompiled into the memo, def hashes inserted.
    pub fn restore(
        &self,
        cache: &ShardedValidityCache,
        programs: &SharedProgramCache,
        defs: &DefIndex,
    ) {
        for (key, verdict) in &self.verdicts {
            cache.store_key(key.clone(), verdict.clone());
        }
        for key in &self.programs {
            programs.warm(key);
        }
        for (hash, verify, def) in &self.defs {
            defs.insert(*hash, *verify, def.clone());
        }
    }

    /// Serializes the snapshot (header + checksummed payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        payload.write_len(self.verdicts.len());
        for (key, verdict) in &self.verdicts {
            write_query_key(&mut payload, key);
            write_validity(&mut payload, verdict);
        }
        payload.write_len(self.defs.len());
        for (hash, verify, def) in &self.defs {
            payload.varint(*hash);
            payload.varint(*verify);
            payload.str(&def.name);
            payload.u8(def.ok as u8);
            payload.u8(def.proved as u8);
            match &def.error {
                Some(e) => {
                    payload.u8(1);
                    payload.str(e);
                }
                None => payload.u8(0),
            }
        }
        payload.write_len(self.programs.len());
        for key in &self.programs {
            write_universals(&mut payload, &key.universals);
            write_constr(&mut payload, &key.hyp);
            write_constr(&mut payload, &key.goal);
        }
        let payload = payload.into_bytes();

        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a snapshot, verifying magic, version, fingerprint and
    /// checksum before touching the payload.
    pub fn from_bytes(bytes: &[u8], expected_fingerprint: u64) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 24 || bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if fingerprint != expected_fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                found: fingerprint,
                expected: expected_fingerprint,
            });
        }
        let stored_checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let payload = &bytes[24..];
        if checksum(payload) != stored_checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = Reader::new(payload);
        let mut verdicts = Vec::new();
        for _ in 0..r.read_len()? {
            let key = read_query_key(&mut r)?;
            let verdict = read_validity(&mut r)?;
            verdicts.push((key, verdict));
        }
        let mut defs = Vec::new();
        for _ in 0..r.read_len()? {
            let hash = r.varint()?;
            let verify = r.varint()?;
            let name = r.str()?;
            let ok = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
            };
            let proved = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
            };
            let error = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                b => return Err(SnapshotError::Corrupt(format!("bad option byte {b}"))),
            };
            defs.push((
                hash,
                verify,
                StoredDef {
                    name,
                    ok,
                    proved,
                    error,
                },
            ));
        }
        let mut programs = Vec::new();
        for _ in 0..r.read_len()? {
            let universals = read_universals(&mut r)?;
            let hyp = read_constr(&mut r, MAX_DEPTH)?;
            let goal = read_constr(&mut r, MAX_DEPTH)?;
            programs.push(ProgramKey {
                universals,
                hyp,
                goal,
            });
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after the last section".to_string(),
            ));
        }
        Ok(Snapshot {
            fingerprint,
            verdicts,
            defs,
            programs,
        })
    }

    /// Writes the snapshot atomically: a temporary sibling file is written
    /// in full, then renamed over `path`, so a crash mid-save can never
    /// leave a torn snapshot where a good one was.  The temporary name is
    /// unique per process and save (pid + counter), so concurrent savers —
    /// two threads of one daemon, or two `check --cache-file` processes
    /// sharing a path — never interleave writes into one tmp file; the last
    /// rename wins with a *whole* snapshot.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with(&crate::faultfs::RealFs, path)
    }

    /// [`Snapshot::save`] through an explicit [`FaultFs`] — the seam the
    /// fault-injection harness drives (and the path WAL compaction uses).
    ///
    /// [`FaultFs`]: crate::faultfs::FaultFs
    pub fn save_with(&self, fs: &dyn crate::faultfs::FaultFs, path: &Path) -> io::Result<()> {
        let _span = rel_obs::span_with("persist.save", self.verdicts.len() as u64);
        fs.write_atomic(path, &self.to_bytes())?;
        rel_obs::counter!("persist.saves").incr();
        Ok(())
    }

    /// Reads and verifies a snapshot file.  `Ok(None)` means the file does
    /// not exist (a legitimate cold start); every other failure is an error
    /// the caller should surface before starting cold.
    pub fn load(path: &Path, expected_fingerprint: u64) -> Result<Option<Snapshot>, SnapshotError> {
        Snapshot::load_with(&crate::faultfs::RealFs, path, expected_fingerprint)
    }

    /// [`Snapshot::load`] through an explicit [`FaultFs`].
    ///
    /// [`FaultFs`]: crate::faultfs::FaultFs
    pub fn load_with(
        fs: &dyn crate::faultfs::FaultFs,
        path: &Path,
        expected_fingerprint: u64,
    ) -> Result<Option<Snapshot>, SnapshotError> {
        let _span = rel_obs::span("persist.load");
        let bytes = match fs.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SnapshotError::Io(e)),
        };
        let snapshot = Snapshot::from_bytes(&bytes, expected_fingerprint)?;
        rel_obs::counter!("persist.loads").incr();
        Ok(Some(snapshot))
    }
}

/// FNV-1a over a byte slice (matches `rel_constraint::Fnv1a`).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::default();
    h.write(bytes);
    h.finish()
}

// --------------------------------------------------------------------------
// Domain-type encoders/decoders
// --------------------------------------------------------------------------

fn sort_tag(sort: Sort) -> u8 {
    match sort {
        Sort::Nat => 0,
        Sort::Real => 1,
    }
}

fn read_sort(r: &mut Reader<'_>) -> Result<Sort, SnapshotError> {
    match r.u8()? {
        0 => Ok(Sort::Nat),
        1 => Ok(Sort::Real),
        b => Err(SnapshotError::Corrupt(format!("bad sort tag {b}"))),
    }
}

fn write_universals(w: &mut Writer, universals: &[(IdxVar, Sort)]) {
    w.write_len(universals.len());
    for (v, s) in universals {
        w.str(v.name());
        w.u8(sort_tag(*s));
    }
}

fn read_universals(r: &mut Reader<'_>) -> Result<Vec<(IdxVar, Sort)>, SnapshotError> {
    let mut out = Vec::new();
    for _ in 0..r.read_len()? {
        let name = r.str()?;
        let sort = read_sort(r)?;
        out.push((IdxVar::new(name), sort));
    }
    Ok(out)
}

fn write_rational(w: &mut Writer, q: Rational) {
    w.zigzag(q.numerator());
    w.varint(q.denominator() as u64);
}

fn read_rational(r: &mut Reader<'_>) -> Result<Rational, SnapshotError> {
    let num = r.zigzag()?;
    let den = r.varint()?;
    let den = i64::try_from(den)
        .ok()
        .filter(|d| *d > 0)
        .ok_or_else(|| SnapshotError::Corrupt(format!("bad rational denominator {den}")))?;
    Ok(Rational::new(num, den))
}

fn write_extended(w: &mut Writer, e: Extended) {
    match e {
        Extended::Finite(q) => {
            w.u8(0);
            write_rational(w, q);
        }
        Extended::Infinity => w.u8(1),
    }
}

fn read_extended(r: &mut Reader<'_>) -> Result<Extended, SnapshotError> {
    match r.u8()? {
        0 => Ok(Extended::Finite(read_rational(r)?)),
        1 => Ok(Extended::Infinity),
        b => Err(SnapshotError::Corrupt(format!("bad extended tag {b}"))),
    }
}

fn write_idx(w: &mut Writer, idx: &Idx) {
    match idx {
        Idx::Var(v) => {
            w.u8(0);
            w.str(v.name());
        }
        Idx::Const(q) => {
            w.u8(1);
            write_rational(w, *q);
        }
        Idx::Infty => w.u8(2),
        Idx::Add(a, b) => write_idx2(w, 3, a, b),
        Idx::Sub(a, b) => write_idx2(w, 4, a, b),
        Idx::Mul(a, b) => write_idx2(w, 5, a, b),
        Idx::Div(a, b) => write_idx2(w, 6, a, b),
        Idx::Ceil(a) => write_idx1(w, 7, a),
        Idx::Floor(a) => write_idx1(w, 8, a),
        Idx::Min(a, b) => write_idx2(w, 9, a, b),
        Idx::Max(a, b) => write_idx2(w, 10, a, b),
        Idx::Log2(a) => write_idx1(w, 11, a),
        Idx::Pow2(a) => write_idx1(w, 12, a),
        Idx::Sum { var, lo, hi, body } => {
            w.u8(13);
            w.str(var.name());
            write_idx(w, lo);
            write_idx(w, hi);
            write_idx(w, body);
        }
    }
}

fn write_idx1(w: &mut Writer, tag: u8, a: &Idx) {
    w.u8(tag);
    write_idx(w, a);
}

fn write_idx2(w: &mut Writer, tag: u8, a: &Idx, b: &Idx) {
    w.u8(tag);
    write_idx(w, a);
    write_idx(w, b);
}

fn read_idx(r: &mut Reader<'_>, depth: u32) -> Result<Idx, SnapshotError> {
    if depth == 0 {
        return Err(SnapshotError::Corrupt(
            "index term nests too deeply".to_string(),
        ));
    }
    let d = depth - 1;
    Ok(match r.u8()? {
        0 => Idx::Var(IdxVar::new(r.str()?)),
        1 => Idx::Const(read_rational(r)?),
        2 => Idx::Infty,
        3 => Idx::Add(read_bidx(r, d)?, read_bidx(r, d)?),
        4 => Idx::Sub(read_bidx(r, d)?, read_bidx(r, d)?),
        5 => Idx::Mul(read_bidx(r, d)?, read_bidx(r, d)?),
        6 => Idx::Div(read_bidx(r, d)?, read_bidx(r, d)?),
        7 => Idx::Ceil(read_bidx(r, d)?),
        8 => Idx::Floor(read_bidx(r, d)?),
        9 => Idx::Min(read_bidx(r, d)?, read_bidx(r, d)?),
        10 => Idx::Max(read_bidx(r, d)?, read_bidx(r, d)?),
        11 => Idx::Log2(read_bidx(r, d)?),
        12 => Idx::Pow2(read_bidx(r, d)?),
        13 => {
            let var = IdxVar::new(r.str()?);
            let lo = read_bidx(r, d)?;
            let hi = read_bidx(r, d)?;
            let body = read_bidx(r, d)?;
            Idx::Sum { var, lo, hi, body }
        }
        b => return Err(SnapshotError::Corrupt(format!("bad index tag {b}"))),
    })
}

fn read_bidx(r: &mut Reader<'_>, depth: u32) -> Result<Box<Idx>, SnapshotError> {
    read_idx(r, depth).map(Box::new)
}

fn write_constr(w: &mut Writer, c: &Constr) {
    match c {
        Constr::Top => w.u8(0),
        Constr::Bot => w.u8(1),
        Constr::Eq(a, b) => write_cmp(w, 2, a, b),
        Constr::Leq(a, b) => write_cmp(w, 3, a, b),
        Constr::Lt(a, b) => write_cmp(w, 4, a, b),
        Constr::And(cs) => write_conn(w, 5, cs),
        Constr::Or(cs) => write_conn(w, 6, cs),
        Constr::Not(c) => {
            w.u8(7);
            write_constr(w, c);
        }
        Constr::Implies(a, b) => {
            w.u8(8);
            write_constr(w, a);
            write_constr(w, b);
        }
        Constr::Forall(q, c) => write_quant(w, 9, q, c),
        Constr::Exists(q, c) => write_quant(w, 10, q, c),
    }
}

fn write_cmp(w: &mut Writer, tag: u8, a: &Idx, b: &Idx) {
    w.u8(tag);
    write_idx(w, a);
    write_idx(w, b);
}

fn write_conn(w: &mut Writer, tag: u8, cs: &[Constr]) {
    w.u8(tag);
    w.write_len(cs.len());
    for c in cs {
        write_constr(w, c);
    }
}

fn write_quant(w: &mut Writer, tag: u8, q: &Quantified, c: &Constr) {
    w.u8(tag);
    w.str(q.var.name());
    w.u8(sort_tag(q.sort));
    write_constr(w, c);
}

fn read_constr(r: &mut Reader<'_>, depth: u32) -> Result<Constr, SnapshotError> {
    if depth == 0 {
        return Err(SnapshotError::Corrupt(
            "constraint nests too deeply".to_string(),
        ));
    }
    let d = depth - 1;
    Ok(match r.u8()? {
        0 => Constr::Top,
        1 => Constr::Bot,
        2 => Constr::Eq(read_idx(r, d)?, read_idx(r, d)?),
        3 => Constr::Leq(read_idx(r, d)?, read_idx(r, d)?),
        4 => Constr::Lt(read_idx(r, d)?, read_idx(r, d)?),
        5 => Constr::And(read_constr_vec(r, d)?),
        6 => Constr::Or(read_constr_vec(r, d)?),
        7 => Constr::Not(Box::new(read_constr(r, d)?)),
        8 => Constr::Implies(Box::new(read_constr(r, d)?), Box::new(read_constr(r, d)?)),
        9 => {
            let q = read_quantified(r)?;
            Constr::Forall(q, Box::new(read_constr(r, d)?))
        }
        10 => {
            let q = read_quantified(r)?;
            Constr::Exists(q, Box::new(read_constr(r, d)?))
        }
        b => return Err(SnapshotError::Corrupt(format!("bad constraint tag {b}"))),
    })
}

fn read_constr_vec(r: &mut Reader<'_>, depth: u32) -> Result<Vec<Constr>, SnapshotError> {
    let mut out = Vec::new();
    for _ in 0..r.read_len()? {
        out.push(read_constr(r, depth)?);
    }
    Ok(out)
}

fn read_quantified(r: &mut Reader<'_>) -> Result<Quantified, SnapshotError> {
    let var = r.str()?;
    let sort = read_sort(r)?;
    Ok(Quantified::new(var, sort))
}

pub(crate) fn write_query_key(w: &mut Writer, key: &QueryKey) {
    w.varint(key.config_fingerprint());
    write_universals(w, key.universals());
    write_constr(w, key.hyp());
    write_constr(w, key.goal());
}

pub(crate) fn read_query_key(r: &mut Reader<'_>) -> Result<QueryKey, SnapshotError> {
    let config_fingerprint = r.varint()?;
    let universals = read_universals(r)?;
    let hyp = read_constr(r, MAX_DEPTH)?;
    let goal = read_constr(r, MAX_DEPTH)?;
    Ok(QueryKey::from_parts(
        config_fingerprint,
        universals,
        hyp,
        goal,
    ))
}

pub(crate) fn write_validity(w: &mut Writer, v: &Validity) {
    match v {
        // Tag 0 stays "proved Valid" (the format-1 meaning of Valid was
        // untagged; the version bump rules out cross-reading anyway) and
        // grid-checked Valid takes a fresh tag, so the verdict index
        // round-trips provenance exactly.
        Validity::Valid(Provenance::Proved) => w.u8(0),
        Validity::Invalid(None) => w.u8(1),
        Validity::Invalid(Some(env)) => {
            w.u8(2);
            w.write_len(env.len());
            for (var, value) in env.iter() {
                w.str(var.name());
                write_extended(w, *value);
            }
        }
        Validity::Unknown => w.u8(3),
        Validity::Valid(Provenance::GridChecked) => w.u8(4),
    }
}

pub(crate) fn read_validity(r: &mut Reader<'_>) -> Result<Validity, SnapshotError> {
    Ok(match r.u8()? {
        0 => Validity::proved(),
        1 => Validity::Invalid(None),
        2 => {
            let mut env = IdxEnv::new();
            for _ in 0..r.read_len()? {
                let var = r.str()?;
                let value = read_extended(r)?;
                env.bind(var, value);
            }
            Validity::Invalid(Some(env))
        }
        3 => Validity::Unknown,
        4 => Validity::grid_checked(),
        b => return Err(SnapshotError::Corrupt(format!("bad validity tag {b}"))),
    })
}
