//! The low-level byte codec of snapshot files.
//!
//! The workspace is offline (no serde), so snapshots use a hand-rolled
//! binary format: LEB128 varints for lengths, counts and tags, zigzag
//! varints for signed numbers, and length-prefixed UTF-8 for strings.  The
//! reader is total — every malformed input becomes a [`DecodeError`], never
//! a panic — because a corrupt cache file must degrade to a cold start, not
//! kill the process.

use std::fmt;

/// A decoding failure, with a human-readable description of what was
/// malformed.  Carrying the description (rather than a variant per site)
/// keeps the reader's error paths one-liners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(message: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(message.into()))
}

/// An append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte (tags, sorts, booleans).
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// An unsigned LEB128 varint.
    pub fn varint(&mut self, mut n: u64) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// A length (usize) as a varint.
    pub fn write_len(&mut self, n: usize) {
        self.varint(n as u64);
    }

    /// A signed number, zigzag-encoded then varint-encoded.
    pub fn zigzag(&mut self, n: i64) {
        self.varint(((n << 1) ^ (n >> 63)) as u64);
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.write_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked byte source over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        match self.buf.get(self.pos) {
            Some(b) => {
                self.pos += 1;
                Ok(*b)
            }
            None => err("unexpected end of input"),
        }
    }

    /// An unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return err("varint overflows u64");
            }
            n |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
        }
        err("varint longer than 10 bytes")
    }

    /// A length, bounded by the bytes actually remaining so that a corrupt
    /// count can never trigger a huge allocation.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return err(format!(
                "length {n} exceeds the {remaining} bytes remaining"
            ));
        }
        Ok(n as usize)
    }

    /// A zigzag-encoded signed number.
    pub fn zigzag(&mut self) -> Result<i64, DecodeError> {
        let n = self.varint()?;
        Ok(((n >> 1) as i64) ^ -((n & 1) as i64))
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.read_len()?;
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("string is not valid UTF-8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_across_magnitudes() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = Writer::new();
        for v in values {
            w.varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn zigzag_roundtrip_with_negatives() {
        let values = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        let mut w = Writer::new();
        for v in values {
            w.zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in values {
            assert_eq!(r.zigzag().unwrap(), v);
        }
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        let mut w = Writer::new();
        w.str("∀ ∆. Φₐ ⟹ Φ");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str().unwrap(), "∀ ∆. Φₐ ⟹ Φ");

        let bad = [2u8, 0xff, 0xfe];
        assert!(Reader::new(&bad).str().is_err());
    }

    #[test]
    fn truncation_and_oversized_lengths_are_errors_not_panics() {
        let mut w = Writer::new();
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail cleanly");
        }
        // A length claiming more bytes than remain is rejected up front.
        let mut w = Writer::new();
        w.varint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).read_len().is_err());
    }
}
