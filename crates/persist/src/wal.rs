//! `rel-wal` — an append-only verdict log layered under the v2 snapshot.
//!
//! The snapshot alone is a write-the-world file flushed on a timer: a crash
//! loses everything memoized since the last flush.  The WAL closes that
//! window.  Every cache store appends one self-validating frame, so the
//! durable state is always `snapshot + WAL suffix`; recovery replays the
//! suffix on top of the snapshot, and a size/record-count threshold folds
//! the log back into a fresh snapshot (compaction) through the same atomic
//! temp+rename save the snapshot layer has always used.
//!
//! ## File format
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"BRCW"
//! 4       4     WAL format version (u32 LE)
//! 8       8     engine fingerprint (u64 LE)
//! 16      …     frames
//! ```
//!
//! Each frame is length-prefixed, checksummed and fingerprinted, so
//! recovery can *verify* a record rather than trust it:
//!
//! ```text
//! [payload len: u32 LE][FNV-1a of fingerprint+payload: u64 LE]
//! [engine fingerprint: u64 LE][payload]
//! ```
//!
//! The payload is a tagged [`WalRecord`]: a verdict insert, a def-index
//! update, or a compaction marker.
//!
//! ## Recovery policy (DESIGN.md §9.2)
//!
//! * A **torn tail** — fewer bytes than one frame header claims — is the
//!   *expected* state after a crash mid-append, never an error: replay
//!   stops there and counts `truncated_tail`.
//! * A frame whose **checksum** fails is counted, skipped by its recorded
//!   length, and replay continues — a single flipped bit rejects exactly
//!   one record, not the log.
//! * A frame carrying a different **engine fingerprint** is counted and
//!   skipped: verdicts from another configuration must never replay.
//! * Replay **never panics** and never applies a record it could not fully
//!   validate.  The invariant: recovered state ⊆ pre-crash state, and ⊇
//!   the state at the last completed compaction.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use birelcost::StoredDef;
use rel_constraint::{QueryKey, Validity};

use crate::codec::{Reader, Writer};
use crate::faultfs::{AppendFile, FaultFs};
use crate::snapshot::{
    read_query_key, read_validity, write_query_key, write_validity, Snapshot, SnapshotError,
};

/// The four magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"BRCW";

/// The current WAL format version.  Bump on any change to the frame or
/// payload encoding.
pub const WAL_VERSION: u32 = 1;

/// Bytes of the file header (magic + version + fingerprint).
const WAL_HEADER_LEN: usize = 16;

/// Bytes of one frame header (length + checksum + fingerprint).
const FRAME_HEADER_LEN: usize = 4 + 8 + 8;

/// Ceiling on one record's payload: anything larger is corruption (real
/// records are a few hundred bytes), and bounding it keeps a corrupt length
/// from directing replay to skip gigabytes.
pub const MAX_RECORD_LEN: u32 = 1 << 26;

/// One durable event in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A validity-cache store: one memoized entailment verdict.
    Verdict(QueryKey, Validity),
    /// A def-index update: one definition's 128-bit input digest and its
    /// stored verdict.
    Def {
        /// Primary input hash.
        input_hash: u64,
        /// Independently seeded verify hash.
        verify_hash: u64,
        /// The recorded verdict.
        def: StoredDef,
    },
    /// A compaction marker: everything before this frame has been folded
    /// into the snapshot.  Written as the first frame of a fresh log so a
    /// recovered process can count completed compactions.
    Compaction {
        /// Records folded into the snapshot by this compaction.
        folded: u64,
    },
}

/// Counters describing one replay pass (all monotone within the pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Fully validated records applied (verdicts + def updates).
    pub replayed: u64,
    /// Compaction markers seen.
    pub compaction_markers: u64,
    /// Frames rejected by checksum or payload decode and skipped.
    pub corrupt_skipped: u64,
    /// Frames rejected because they carry a different engine fingerprint.
    pub fingerprint_rejected: u64,
    /// 1 when replay stopped at a torn tail (a partial final frame — the
    /// expected state after a crash mid-append).
    pub truncated_tail: u64,
}

impl ReplayStats {
    /// Whether the log deviated from a clean record stream in any way.
    pub fn anomalies(&self) -> u64 {
        self.corrupt_skipped + self.fingerprint_rejected + self.truncated_tail
    }
}

/// Encodes one record's payload (without the frame header).
fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match record {
        WalRecord::Verdict(key, verdict) => {
            w.u8(0);
            write_query_key(&mut w, key);
            write_validity(&mut w, verdict);
        }
        WalRecord::Def {
            input_hash,
            verify_hash,
            def,
        } => {
            w.u8(1);
            w.varint(*input_hash);
            w.varint(*verify_hash);
            w.str(&def.name);
            w.u8(def.ok as u8);
            w.u8(def.proved as u8);
            match &def.error {
                Some(e) => {
                    w.u8(1);
                    w.str(e);
                }
                None => w.u8(0),
            }
        }
        WalRecord::Compaction { folded } => {
            w.u8(2);
            w.varint(*folded);
        }
    }
    w.into_bytes()
}

/// Decodes one record payload; any malformation is an error, never a panic.
fn decode_payload(payload: &[u8]) -> Result<WalRecord, SnapshotError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        0 => {
            let key = read_query_key(&mut r)?;
            let verdict = read_validity(&mut r)?;
            WalRecord::Verdict(key, verdict)
        }
        1 => {
            let input_hash = r.varint()?;
            let verify_hash = r.varint()?;
            let name = r.str()?;
            let ok = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
            };
            let proved = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
            };
            let error = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                b => return Err(SnapshotError::Corrupt(format!("bad option byte {b}"))),
            };
            WalRecord::Def {
                input_hash,
                verify_hash,
                def: StoredDef {
                    name,
                    ok,
                    proved,
                    error,
                },
            }
        }
        2 => WalRecord::Compaction {
            folded: r.varint()?,
        },
        b => return Err(SnapshotError::Corrupt(format!("bad wal record tag {b}"))),
    };
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after wal record".to_string(),
        ));
    }
    Ok(record)
}

/// Why one frame failed validation.  `skip` variants carry the byte count a
/// sequential reader should hop to reach the next frame boundary; the
/// boundary-less variants (`Torn`, `Absurd`) end the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than one frame requires — the expected state at a
    /// torn tail, and a hard error for a frame received over the wire.
    Torn,
    /// The length field exceeds [`MAX_RECORD_LEN`]: corruption, and nothing
    /// after it can be framed.
    Absurd(u32),
    /// The stored checksum disagrees with the recomputed one.
    Checksum {
        /// Bytes to skip to the claimed next frame.
        skip: usize,
    },
    /// The frame validates but was written under a different engine
    /// fingerprint: it must never be applied.
    Foreign {
        /// The foreign fingerprint the frame carries.
        fingerprint: u64,
        /// Bytes to skip to the next frame.
        skip: usize,
    },
    /// Checksum and fingerprint pass but the payload will not decode.
    Undecodable {
        /// What the decoder rejected.
        reason: String,
        /// Bytes to skip to the next frame.
        skip: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn => write!(f, "torn frame"),
            FrameError::Absurd(len) => write!(f, "absurd frame length {len}"),
            FrameError::Checksum { .. } => write!(f, "frame checksum mismatch"),
            FrameError::Foreign { fingerprint, .. } => {
                write!(f, "foreign engine fingerprint {fingerprint:016x}")
            }
            FrameError::Undecodable { reason, .. } => {
                write!(f, "undecodable frame payload: {reason}")
            }
        }
    }
}

/// Validates the frame at the head of `bytes` against `fingerprint`,
/// returning the decoded record and the bytes consumed.  This is the single
/// validation path for both recovery ([`replay`]) and replication inbound:
/// a frame is applied only if its length is sane, its checksum matches, its
/// engine fingerprint is ours, and its payload decodes — otherwise it is
/// rejected with a reason, never partially trusted.
pub fn validate_frame(bytes: &[u8], fingerprint: u64) -> Result<(WalRecord, usize), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Err(FrameError::Absurd(len));
    }
    let len = len as usize;
    if bytes.len() < FRAME_HEADER_LEN + len {
        return Err(FrameError::Torn);
    }
    let skip = FRAME_HEADER_LEN + len;
    let stored_checksum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let frame_fp = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER_LEN..skip];
    if frame_checksum(frame_fp, payload) != stored_checksum {
        return Err(FrameError::Checksum { skip });
    }
    if frame_fp != fingerprint {
        return Err(FrameError::Foreign {
            fingerprint: frame_fp,
            skip,
        });
    }
    match decode_payload(payload) {
        Ok(record) => Ok((record, skip)),
        Err(e) => Err(FrameError::Undecodable {
            reason: e.to_string(),
            skip,
        }),
    }
}

/// Encodes one full frame: header + payload.
pub fn encode_frame(fingerprint: u64, record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(fingerprint, &payload).to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// FNV-1a over the fingerprint bytes followed by the payload: flipping
/// either rejects the frame.
fn frame_checksum(fingerprint: u64, payload: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = rel_constraint::Fnv1a::default();
    h.write(&fingerprint.to_le_bytes());
    h.write(payload);
    h.finish()
}

/// The WAL file header for `fingerprint`.
fn encode_header(fingerprint: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out
}

/// The outcome of replaying one WAL file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Fully validated records, in append order (markers included).
    pub records: Vec<WalRecord>,
    /// What replay saw along the way.
    pub stats: ReplayStats,
    /// Human-readable reasons the log (or parts of it) was rejected.
    pub warnings: Vec<String>,
    /// Whether the whole log was rejected (bad header: not a WAL, wrong
    /// version, or a different engine's fingerprint).  The caller starts
    /// from the snapshot alone and resets the log.
    pub header_rejected: bool,
}

/// Replays the WAL at `path`, tolerating a torn tail and skipping — never
/// replaying — frames that fail checksum, fingerprint or decode validation.
/// A missing file is an empty log.
pub fn replay(fs: &dyn FaultFs, path: &Path, fingerprint: u64) -> WalReplay {
    let _span = rel_obs::span("persist.wal.replay");
    let mut out = WalReplay::default();
    let bytes = match fs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return out,
        Err(e) => {
            out.warnings.push(format!("cannot read wal: {e}"));
            out.header_rejected = true;
            return out;
        }
    };
    if bytes.is_empty() {
        return out; // freshly created, header not yet written
    }
    if bytes.len() < WAL_HEADER_LEN {
        // A crash during the very first header write: treat as empty.
        out.stats.truncated_tail = 1;
        out.warnings
            .push("torn wal header; starting fresh".to_string());
        return out;
    }
    if bytes[..4] != WAL_MAGIC {
        out.warnings.push("not a wal file (bad magic)".to_string());
        out.header_rejected = true;
        return out;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        out.warnings
            .push(format!("unsupported wal version {version}"));
        out.header_rejected = true;
        return out;
    }
    let header_fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_fp != fingerprint {
        out.warnings.push(format!(
            "wal was written under engine fingerprint {header_fp:016x}, this engine is \
             {fingerprint:016x}"
        ));
        out.header_rejected = true;
        return out;
    }

    let mut pos = WAL_HEADER_LEN;
    while pos < bytes.len() {
        match validate_frame(&bytes[pos..], fingerprint) {
            Ok((WalRecord::Compaction { folded }, used)) => {
                out.stats.compaction_markers += 1;
                out.records.push(WalRecord::Compaction { folded });
                pos += used;
            }
            Ok((record, used)) => {
                out.stats.replayed += 1;
                out.records.push(record);
                pos += used;
            }
            Err(FrameError::Torn) => {
                let remaining = bytes.len() - pos;
                out.stats.truncated_tail = 1;
                out.warnings.push(format!(
                    "torn wal tail at offset {pos}: {remaining} byte(s) dropped"
                ));
                break;
            }
            Err(FrameError::Absurd(len)) => {
                // A corrupt length is indistinguishable from garbage: nothing
                // after it can be framed, so the rest of the log is dropped.
                out.stats.corrupt_skipped += 1;
                out.warnings.push(format!(
                    "absurd frame length {len} at offset {pos}; tail dropped"
                ));
                break;
            }
            Err(FrameError::Checksum { skip }) => {
                out.stats.corrupt_skipped += 1;
                pos += skip;
            }
            Err(FrameError::Foreign { skip, .. }) => {
                out.stats.fingerprint_rejected += 1;
                pos += skip;
            }
            Err(FrameError::Undecodable { reason, skip }) => {
                out.stats.corrupt_skipped += 1;
                out.warnings
                    .push(format!("undecodable wal record: {reason}"));
                pos += skip;
            }
        }
    }

    rel_obs::counter!("wal.replayed").add(out.stats.replayed);
    rel_obs::counter!("wal.truncated_tails").add(out.stats.truncated_tail);
    rel_obs::counter!("wal.corrupt_skipped").add(out.stats.corrupt_skipped);
    rel_obs::counter!("wal.fingerprint_rejected").add(out.stats.fingerprint_rejected);
    out
}

/// An open, appendable WAL.
pub struct Wal {
    fs: Arc<dyn FaultFs>,
    path: PathBuf,
    fingerprint: u64,
    /// Lazily opened append handle; dropped (and reopened) across resets,
    /// because a reset replaces the file under any existing handle.
    file: Option<Box<dyn AppendFile>>,
    /// Current file size in bytes (header included once written).
    bytes: u64,
    /// Records currently in the log (replayed + appended this session).
    records: u64,
    /// Session append counter.
    appends: u64,
    /// Appends that failed (the verdict stayed in memory; durability for it
    /// waits for the next compaction).
    append_errors: u64,
    /// Set when an append failed: the file may end in a torn frame, and a
    /// frame appended after that garbage would be unreachable to replay
    /// (framing stops at the tear).  Refuse appends until [`Wal::reset`]
    /// rewrites the file whole.
    tail_poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("bytes", &self.bytes)
            .field("records", &self.records)
            .field("appends", &self.appends)
            .finish()
    }
}

impl Wal {
    /// Opens the log for appending after a [`replay`] pass.  `records` and
    /// `bytes` describe what the replay found (so thresholds account for
    /// the existing suffix).
    fn resume(fs: Arc<dyn FaultFs>, path: PathBuf, fingerprint: u64, records: u64) -> Wal {
        let bytes = fs.read(&path).map(|b| b.len() as u64).unwrap_or(0);
        Wal {
            fs,
            path,
            fingerprint,
            file: None,
            bytes,
            records,
            appends: 0,
            append_errors: 0,
            tail_poisoned: false,
        }
    }

    fn ensure_open(&mut self) -> io::Result<&mut Box<dyn AppendFile>> {
        if self.file.is_none() {
            let mut file = self.fs.open_append(&self.path)?;
            if self.bytes == 0 {
                let header = encode_header(self.fingerprint);
                file.append(&header)?;
                file.sync()?;
                self.bytes = header.len() as u64;
            }
            self.file = Some(file);
        }
        Ok(self.file.as_mut().expect("opened above"))
    }

    /// Appends one record durably (write + fsync).  On failure the frame
    /// may sit torn at the tail; replay truncates it, and the log refuses
    /// further appends (`tail_poisoned`) until the next compaction rewrites
    /// the file — a frame written after torn garbage would be unreachable,
    /// which reads as durable but is not.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.tail_poisoned {
            self.append_errors += 1;
            rel_obs::counter!("wal.append_errors").incr();
            return Err(io::Error::other(
                "wal tail is torn by an earlier failed append; awaiting compaction",
            ));
        }
        let frame = encode_frame(self.fingerprint, record);
        let result = (|| {
            let file = self.ensure_open()?;
            file.append(&frame)?;
            file.sync()
        })();
        match result {
            Ok(()) => {
                self.bytes += frame.len() as u64;
                self.records += 1;
                self.appends += 1;
                rel_obs::counter!("wal.appends").incr();
                Ok(())
            }
            Err(e) => {
                self.append_errors += 1;
                self.tail_poisoned = true;
                self.file = None;
                rel_obs::counter!("wal.append_errors").incr();
                Err(e)
            }
        }
    }

    /// Truncates the log to a fresh header plus one compaction marker,
    /// atomically (temp + rename).  Called after the state has been folded
    /// into a snapshot; a crash before the rename leaves the full log —
    /// replaying it on top of the new snapshot is idempotent.
    pub fn reset(&mut self, folded: u64) -> io::Result<()> {
        let mut content = encode_header(self.fingerprint);
        content.extend_from_slice(&encode_frame(
            self.fingerprint,
            &WalRecord::Compaction { folded },
        ));
        self.fs.write_atomic(&self.path, &content)?;
        self.file = None; // stale handle points at the replaced file
        self.bytes = content.len() as u64;
        self.records = 1; // the marker
        self.tail_poisoned = false; // the file is whole again
        Ok(())
    }
}

/// Compaction thresholds: when the log outgrows either bound, the next
/// check folds it into the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct WalLimits {
    /// Compact when the log exceeds this many bytes.
    pub max_bytes: u64,
    /// Compact when the log holds this many records.
    pub max_records: u64,
}

impl Default for WalLimits {
    fn default() -> WalLimits {
        WalLimits {
            max_bytes: 4 << 20,
            max_records: 8_192,
        }
    }
}

/// A point-in-time summary of one [`WalStore`] (surfaced by the daemon's
/// `{"cache": "stats"}` under `"wal"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended this session.
    pub appends: u64,
    /// Appends that failed (state stays in memory until compaction).
    pub append_errors: u64,
    /// Records currently in the log.
    pub records: u64,
    /// Current log size in bytes.
    pub bytes: u64,
    /// Compactions completed this session.
    pub compactions: u64,
    /// Records replayed at startup.
    pub replayed: u64,
    /// Torn tails truncated at startup (0 or 1).
    pub truncated_tails: u64,
    /// Frames skipped at startup for checksum/decode failures.
    pub corrupt_skipped: u64,
    /// Frames skipped at startup for a foreign engine fingerprint.
    pub fingerprint_rejected: u64,
    /// Stale `*.tmp.*` files reaped at startup.
    pub tmp_reaped: u64,
    /// 1 when the tail is poisoned by a failed append: the log refuses
    /// further appends until the next compaction rewrites it whole.
    pub poisoned: u64,
}

/// What [`WalStore::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The snapshot, when one loaded cleanly.
    pub snapshot: Option<Snapshot>,
    /// Validated WAL records to replay on top of it, in append order.
    pub records: Vec<WalRecord>,
    /// Replay counters.
    pub stats: ReplayStats,
    /// Why anything was rejected (the caller surfaces these and proceeds).
    pub warnings: Vec<String>,
    /// Stale temp files swept from the snapshot directory.
    pub reaped_tmp: u64,
}

impl Recovery {
    /// Whether the caller should fold the recovered state into a fresh
    /// snapshot right away: there are live suffix records (bounding the
    /// next replay) or the log had anomalies (rewriting drops a torn or
    /// corrupt tail so later appends are never shadowed by garbage).
    pub fn should_compact(&self) -> bool {
        self.stats.replayed > 0 || self.stats.anomalies() > 0
    }
}

/// The snapshot + WAL pair under one cache path: `<path>` is the snapshot,
/// `<path>.wal` the log.
#[derive(Debug)]
pub struct WalStore {
    fs: Arc<dyn FaultFs>,
    snapshot_path: PathBuf,
    wal: Wal,
    limits: WalLimits,
    compactions: u64,
    replay: ReplayStats,
    reaped_tmp: u64,
}

/// The log path for a snapshot path: `cache.birelcost` → `cache.birelcost.wal`.
pub fn wal_path(snapshot_path: &Path) -> PathBuf {
    let mut name = snapshot_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".wal");
    snapshot_path.with_file_name(name)
}

/// Sweeps stale `<name>.tmp.<pid>.<seq>` siblings left by a crash mid-save.
/// Returns how many were reaped (errors are ignored: the sweep is hygiene,
/// not correctness — a tmp file is never read by recovery).
pub fn sweep_stale_tmp(fs: &dyn FaultFs, target: &Path) -> u64 {
    let Some(name) = target.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let dir = match target.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{name}.tmp.");
    let mut reaped = 0;
    if let Ok(entries) = fs.list_dir(&dir) {
        for entry in entries {
            if entry.starts_with(&prefix) && fs.remove_file(&dir.join(&entry)).is_ok() {
                reaped += 1;
            }
        }
    }
    rel_obs::counter!("persist.tmp_reaped").add(reaped);
    reaped
}

impl WalStore {
    /// Opens (or creates) the snapshot + WAL pair and recovers whatever
    /// validates: stale temp files are swept, the snapshot is loaded if it
    /// verifies, and the log suffix is replayed with torn-tail truncation.
    /// Nothing here fails the caller — every rejection degrades to a
    /// warning and less recovered state, because a bad cache can slow a
    /// process down but must never stop it.
    pub fn open(
        fs: Arc<dyn FaultFs>,
        snapshot_path: impl Into<PathBuf>,
        fingerprint: u64,
        limits: WalLimits,
    ) -> (WalStore, Recovery) {
        let snapshot_path = snapshot_path.into();
        let log_path = wal_path(&snapshot_path);
        let mut recovery = Recovery {
            reaped_tmp: sweep_stale_tmp(fs.as_ref(), &snapshot_path)
                + sweep_stale_tmp(fs.as_ref(), &log_path),
            ..Recovery::default()
        };

        match Snapshot::load_with(fs.as_ref(), &snapshot_path, fingerprint) {
            Ok(snapshot) => recovery.snapshot = snapshot,
            Err(e) => recovery.warnings.push(format!(
                "ignoring cache file {}: {e}",
                snapshot_path.display()
            )),
        }

        let mut replayed = replay(fs.as_ref(), &log_path, fingerprint);
        recovery.records = std::mem::take(&mut replayed.records);
        recovery.stats = replayed.stats;
        recovery
            .warnings
            .extend(replayed.warnings.iter().map(|w| format!("wal: {w}")));

        let records = if replayed.header_rejected {
            0
        } else {
            recovery.stats.replayed + recovery.stats.compaction_markers
        };
        let mut wal = Wal::resume(Arc::clone(&fs), log_path, fingerprint, records);
        if replayed.header_rejected {
            // A foreign or garbled log can never be appended to; replace it
            // with a fresh header so this session's appends are replayable.
            wal.bytes = 0;
            if let Err(e) = wal.reset(0) {
                recovery
                    .warnings
                    .push(format!("cannot reset rejected wal: {e}"));
            } else {
                wal.records = 1;
            }
        }

        let store = WalStore {
            fs,
            snapshot_path,
            wal,
            limits,
            compactions: 0,
            replay: recovery.stats,
            reaped_tmp: recovery.reaped_tmp,
        };
        (store, recovery)
    }

    /// Appends one verdict insert.
    pub fn append_verdict(&mut self, key: &QueryKey, verdict: &Validity) -> io::Result<()> {
        self.wal
            .append(&WalRecord::Verdict(key.clone(), verdict.clone()))
    }

    /// Appends one def-index update.
    pub fn append_def(
        &mut self,
        input_hash: u64,
        verify_hash: u64,
        def: &StoredDef,
    ) -> io::Result<()> {
        self.wal.append(&WalRecord::Def {
            input_hash,
            verify_hash,
            def: def.clone(),
        })
    }

    /// Whether the log has outgrown its compaction thresholds, or can no
    /// longer accept appends (torn tail after a failed one) — either way
    /// the caller should compact soon.
    pub fn needs_compaction(&self) -> bool {
        self.wal.bytes > self.limits.max_bytes
            || self.wal.records > self.limits.max_records
            || self.wal.tail_poisoned
    }

    /// Folds the log into `snapshot`: saves it atomically, then truncates
    /// the log to a fresh header + compaction marker.  Crash-ordering: the
    /// snapshot lands *before* the truncation, so a crash between the two
    /// replays the old suffix on top of the new snapshot — a no-op by
    /// idempotence, never a loss.
    pub fn compact(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let _span = rel_obs::span_with("persist.wal.compact", self.wal.records);
        let folded = self.wal.records;
        snapshot.save_with(self.fs.as_ref(), &self.snapshot_path)?;
        self.wal.reset(folded)?;
        self.compactions += 1;
        rel_obs::counter!("wal.compactions").incr();
        Ok(())
    }

    /// The snapshot file this store compacts into.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.wal.appends,
            append_errors: self.wal.append_errors,
            records: self.wal.records,
            bytes: self.wal.bytes,
            compactions: self.compactions,
            replayed: self.replay.replayed,
            truncated_tails: self.replay.truncated_tail,
            corrupt_skipped: self.replay.corrupt_skipped,
            fingerprint_rejected: self.replay.fingerprint_rejected,
            tmp_reaped: self.reaped_tmp,
            poisoned: self.wal.tail_poisoned as u64,
        }
    }

}
