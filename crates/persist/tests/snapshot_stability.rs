//! Snapshot-format stability across the constraint-interning PR.
//!
//! The hash-consed constraint pool, the FM subproblem memo and the indexed
//! existential search are all in-memory acceleration layers: none of them
//! may move the persisted surface.  This test pins that with **golden
//! bytes**: the hex blob below is a complete v2 snapshot serialized by the
//! pre-interning build (commit `3f49f5e`), and the engine fingerprint is the
//! value that build reported for `Engine::new()`.  The current build must
//!
//! 1. report the identical default-engine fingerprint (a drift here would
//!    cold-start every existing cache file),
//! 2. re-serialize the same logical snapshot to the identical bytes
//!    (`QueryKey` canonicalization and the codec are untouched by
//!    interning), and
//! 3. load — warm-start — the pre-PR blob into live caches.
//!
//! If a *deliberate* format or fingerprint change ever lands, regenerate
//! the constants below and bump `FORMAT_VERSION` per DESIGN.md §6.

use birelcost::{DefIndex, Engine, StoredDef};
use rel_constraint::{
    Constr, ProgramKey, QueryKey, ShardedValidityCache, SharedProgramCache, Validity, ValidityCache,
};
use rel_index::{Idx, IdxVar, Sort};
use rel_persist::Snapshot;

/// `Engine::new().fingerprint()` as reported by the pre-interning build.
const GOLDEN_FINGERPRINT: u64 = 0x3b00_3972_1823_44c0;

/// A complete snapshot file serialized by the pre-interning build from the
/// fixed state assembled in `golden_snapshot()` below.
const GOLDEN_BYTES_HEX: &str = "4252435302000000c04423187239003bed46c17bedbd0cb201edbd0102016e000174010300016e0300016e01020103070600016e0104010a0001740102010001070b06676f6c64656e0101000101016e00000300016e010801";

fn decode_hex(hex: &str) -> Vec<u8> {
    assert!(hex.len().is_multiple_of(2));
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// The fixed snapshot state the golden bytes encode (one verdict, one def
/// digest, one program key — every section exercised).
fn golden_snapshot() -> Snapshot {
    let key = QueryKey::new(
        0x5EED,
        &[
            (IdxVar::new("n"), Sort::Nat),
            (IdxVar::new("t"), Sort::Real),
        ],
        &Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one()),
        &Constr::leq(
            Idx::half_ceil(Idx::var("n")),
            Idx::max(Idx::var("t"), Idx::one()),
        ),
    );
    Snapshot {
        fingerprint: GOLDEN_FINGERPRINT,
        verdicts: vec![(key, Validity::proved())],
        defs: vec![(
            7,
            11,
            StoredDef {
                name: "golden".to_string(),
                ok: true,
                proved: true,
                error: None,
            },
        )],
        programs: vec![ProgramKey {
            universals: vec![(IdxVar::new("n"), Sort::Nat)],
            hyp: Constr::Top,
            goal: Constr::leq(Idx::var("n"), Idx::nat(4)),
        }],
    }
}

#[test]
fn default_engine_fingerprint_is_unchanged_by_interning() {
    assert_eq!(
        Engine::new().fingerprint(),
        GOLDEN_FINGERPRINT,
        "the default engine fingerprint drifted: every existing cache file \
         would cold-start (if the change is deliberate, regenerate the \
         golden constants and review DESIGN.md §6)"
    );
}

#[test]
fn query_key_byte_encoding_is_unchanged_by_interning() {
    let bytes = golden_snapshot().to_bytes();
    assert_eq!(
        bytes,
        decode_hex(GOLDEN_BYTES_HEX),
        "snapshot byte encoding drifted from the pre-interning build"
    );
}

#[test]
fn pre_interning_v2_snapshot_warm_starts_after_the_pr() {
    let bytes = decode_hex(GOLDEN_BYTES_HEX);
    let loaded =
        Snapshot::from_bytes(&bytes, GOLDEN_FINGERPRINT).expect("pre-PR snapshot must load");
    assert_eq!(loaded, golden_snapshot());

    // And it restores into live caches: the warm start a daemon would do.
    let cache = ShardedValidityCache::new();
    let programs = SharedProgramCache::new();
    let defs = DefIndex::new();
    loaded.restore(&cache, &programs, &defs);
    assert_eq!(cache.stats().entries, 1);
    assert_eq!(programs.stats().entries, 1);
    assert_eq!(defs.len(), 1);
    assert_eq!(defs.lookup(7, 11).unwrap().name, "golden");
}
