//! Snapshot format tests: property-based round-trips over randomized cache
//! contents, and corruption tests asserting that every malformed file is
//! rejected cleanly (cold start, no panic).

use proptest::prelude::*;

use birelcost::{DefIndex, StoredDef};
use rel_constraint::{
    Constr, ProgramKey, QueryKey, ShardedValidityCache, SharedProgramCache, Validity,
};
use rel_index::{Extended, Idx, IdxEnv, IdxVar, Rational, Sort};
use rel_persist::{Snapshot, SnapshotError, FORMAT_VERSION, MAGIC};

const FP: u64 = 0xF00D_CAFE;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_var() -> BoxedStrategy<IdxVar> {
    prop_oneof![
        Just(IdxVar::new("n")),
        Just(IdxVar::new("a")),
        Just(IdxVar::new("α")),
        Just(IdxVar::new("%e0")),
    ]
}

fn arb_sort() -> BoxedStrategy<Sort> {
    prop_oneof![Just(Sort::Nat), Just(Sort::Real)]
}

fn arb_leaf() -> BoxedStrategy<Idx> {
    prop_oneof![
        arb_var().prop_map(Idx::Var),
        (0u64..40).prop_map(Idx::nat),
        ((-9i64..9), (1i64..5)).prop_map(|(n, d)| Idx::Const(Rational::new(n, d))),
        Just(Idx::Infty),
    ]
}

fn arb_idx() -> BoxedStrategy<Idx> {
    // One level of structure over the leaves, one deeper arm (a sum whose
    // body is itself structured): covers every constructor, including
    // nesting, without a recursive strategy.
    let level1 = prop_oneof![
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| a + b),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| a - b),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| a * b),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| a / b),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| Idx::min(a, b)),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| Idx::max(a, b)),
        arb_leaf().prop_map(Idx::ceil),
        arb_leaf().prop_map(Idx::floor),
        arb_leaf().prop_map(Idx::log2),
        arb_leaf().prop_map(Idx::pow2),
        arb_leaf(),
    ];
    prop_oneof![
        level1.clone(),
        (level1, arb_leaf(), arb_var()).prop_map(|(body, hi, v)| Idx::sum(
            v,
            Idx::zero(),
            hi,
            body
        )),
    ]
}

fn arb_atom() -> BoxedStrategy<Constr> {
    prop_oneof![
        (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::eq(a, b)),
        (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::leq(a, b)),
        (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::lt(a, b)),
        Just(Constr::Top),
        Just(Constr::Bot),
    ]
}

fn arb_constr() -> BoxedStrategy<Constr> {
    prop_oneof![
        arb_atom(),
        (arb_atom(), arb_atom()).prop_map(|(a, b)| Constr::And(vec![a, b])),
        (arb_atom(), arb_atom()).prop_map(|(a, b)| Constr::Or(vec![a, b])),
        arb_atom().prop_map(|a| Constr::Not(Box::new(a))),
        (arb_atom(), arb_atom()).prop_map(|(a, b)| Constr::Implies(Box::new(a), Box::new(b))),
        (arb_var(), arb_sort(), arb_atom()).prop_map(|(v, s, c)| Constr::forall(v.name(), s, c)),
        (arb_var(), arb_sort(), arb_atom()).prop_map(|(v, s, c)| Constr::exists(v.name(), s, c)),
    ]
}

fn arb_universals() -> BoxedStrategy<Vec<(IdxVar, Sort)>> {
    prop_oneof![
        Just(vec![]),
        (arb_var(), arb_sort()).prop_map(|(v, s)| vec![(v, s)]),
        (arb_var(), arb_sort(), arb_sort())
            .prop_map(|(v, s1, s2)| { vec![(v.clone(), s1), (IdxVar::new("m"), s2)] }),
    ]
}

fn arb_validity() -> BoxedStrategy<Validity> {
    prop_oneof![
        Just(Validity::proved()),
        Just(Validity::grid_checked()),
        Just(Validity::Invalid(None)),
        (arb_var(), 0u64..50).prop_map(|(v, n)| {
            let mut env = IdxEnv::new();
            env.bind(v, Extended::from(n));
            Validity::Invalid(Some(env))
        }),
        Just(Validity::Unknown),
    ]
}

fn arb_snapshot() -> BoxedStrategy<Snapshot> {
    (
        (arb_universals(), arb_constr(), arb_constr(), arb_validity()),
        (arb_universals(), arb_constr(), arb_constr()),
        (0u64..u64::MAX, arb_var()),
    )
        .prop_map(|((u1, h1, g1, v1), (u2, h2, g2), (hash, var))| Snapshot {
            fingerprint: FP,
            verdicts: vec![(QueryKey::new(FP, &u1, &h1, &g1), v1)],
            defs: vec![(
                hash,
                hash.rotate_left(17) ^ 0xD1F7,
                StoredDef {
                    name: var.name().to_string(),
                    ok: hash.is_multiple_of(2),
                    proved: hash.is_multiple_of(4),
                    error: if hash.is_multiple_of(2) {
                        None
                    } else {
                        Some("previous failure".to_string())
                    },
                },
            )],
            programs: vec![ProgramKey {
                universals: u2,
                hyp: h2,
                goal: g2,
            }],
        })
        .boxed()
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn serialize_deserialize_is_identity(snapshot in arb_snapshot()) {
        let bytes = snapshot.to_bytes();
        let back = Snapshot::from_bytes(&bytes, FP).expect("well-formed snapshot must load");
        prop_assert_eq!(&back, &snapshot);
        // And serialization is deterministic.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restored_caches_reproduce_contents_and_verdicts(snapshot in arb_snapshot()) {
        let bytes = snapshot.to_bytes();
        let back = Snapshot::from_bytes(&bytes, FP).unwrap();

        let cache = ShardedValidityCache::new();
        let programs = SharedProgramCache::new();
        let defs = DefIndex::new();
        back.restore(&cache, &programs, &defs);

        // Re-capturing yields the same logical contents: identical verdict
        // set, identical def entries, identical program keys.
        let recaptured = Snapshot::capture(FP, &cache, &programs, &defs);
        let mut want = snapshot.verdicts.clone();
        want.sort_by_key(|(k, _)| k.stable_hash());
        let mut got = recaptured.verdicts.clone();
        got.sort_by_key(|(k, _)| k.stable_hash());
        prop_assert_eq!(got, want);
        prop_assert_eq!(recaptured.defs, snapshot.defs);
        prop_assert_eq!(recaptured.programs.len(), snapshot.programs.len());
    }
}

// ---------------------------------------------------------------------------
// Corruption tests
// ---------------------------------------------------------------------------

fn sample_snapshot() -> Snapshot {
    let universals = vec![(IdxVar::new("n"), Sort::Nat)];
    let hyp = Constr::leq(Idx::var("n"), Idx::nat(8));
    let goal = Constr::leq(Idx::var("n"), Idx::nat(9));
    Snapshot {
        fingerprint: FP,
        verdicts: vec![(
            QueryKey::new(FP, &universals, &hyp, &goal),
            Validity::proved(),
        )],
        defs: vec![(
            42,
            43,
            StoredDef {
                name: "id".to_string(),
                ok: true,
                proved: true,
                error: None,
            },
        )],
        programs: vec![ProgramKey {
            universals,
            hyp,
            goal,
        }],
    }
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let bytes = sample_snapshot().to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..cut], FP).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    // The checksum covers the payload and the header fields are each
    // verified, so no single-byte corruption anywhere in the file may load.
    let bytes = sample_snapshot().to_bytes();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        assert!(
            Snapshot::from_bytes(&corrupt, FP).is_err(),
            "flipping byte {i} must be rejected"
        );
    }
}

#[test]
fn fm_knob_is_fingerprinted_and_invalidates_snapshots() {
    // `use_fm` changes verdicts (`Unknown`/grid-checked → proved), unlike
    // the verdict-neutral compiled-eval knobs: a snapshot recorded with the
    // FM layer on must never warm-start a solver running with it off, and
    // vice versa.
    use birelcost::Engine;
    use rel_constraint::SolveConfig;

    let fm_on = Engine::new();
    let fm_off = Engine::new().with_solve_config(SolveConfig {
        use_fm: false,
        ..SolveConfig::default()
    });
    assert_ne!(
        fm_on.fingerprint(),
        fm_off.fingerprint(),
        "the FM knob must be part of the engine fingerprint"
    );
    // Sanity: the evaluation-strategy knobs stay verdict-neutral and do
    // *not* split fingerprints.
    let compiled_off = Engine::new().with_solve_config(SolveConfig {
        use_compiled_eval: false,
        ..SolveConfig::default()
    });
    assert_eq!(fm_on.fingerprint(), compiled_off.fingerprint());

    let snapshot = Snapshot {
        fingerprint: fm_on.fingerprint(),
        ..sample_snapshot()
    };
    let bytes = snapshot.to_bytes();
    assert!(Snapshot::from_bytes(&bytes, fm_on.fingerprint()).is_ok());
    match Snapshot::from_bytes(&bytes, fm_off.fingerprint()) {
        Err(SnapshotError::FingerprintMismatch { found, expected }) => {
            assert_eq!(found, fm_on.fingerprint());
            assert_eq!(expected, fm_off.fingerprint());
        }
        other => panic!("expected FingerprintMismatch across the FM knob, got {other:?}"),
    }
}

#[test]
fn format_version_1_snapshots_are_rejected() {
    // Version 2 added verdict provenance; a version-1 file cannot express
    // it and must cold-start rather than load with guessed provenance.
    let mut bytes = sample_snapshot().to_bytes();
    bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes, FP),
        Err(SnapshotError::UnsupportedVersion(1))
    ));
}

#[test]
fn wrong_fingerprint_is_rejected_with_the_specific_error() {
    let bytes = sample_snapshot().to_bytes();
    match Snapshot::from_bytes(&bytes, FP + 1) {
        Err(SnapshotError::FingerprintMismatch { found, expected }) => {
            assert_eq!(found, FP);
            assert_eq!(expected, FP + 1);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_future_versions_are_rejected() {
    let bytes = sample_snapshot().to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        Snapshot::from_bytes(&bad_magic, FP),
        Err(SnapshotError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&future, FP),
        Err(SnapshotError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));

    assert!(
        matches!(
            Snapshot::from_bytes(&MAGIC, FP),
            Err(SnapshotError::BadMagic),
        ),
        "a bare magic prefix is too short to be a snapshot"
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    // Appending bytes after a valid payload changes the checksum; fixing the
    // checksum up still trips the every-byte-consumed check.
    let snapshot = sample_snapshot();
    let mut bytes = snapshot.to_bytes();
    bytes.push(0);
    assert!(Snapshot::from_bytes(&bytes, FP).is_err());
}

#[test]
fn missing_file_is_a_clean_cold_start_and_save_load_roundtrips() {
    let dir = std::env::temp_dir().join(format!("rel-persist-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.birelcost");

    assert!(matches!(Snapshot::load(&path, FP), Ok(None)));

    let snapshot = sample_snapshot();
    snapshot.save(&path).unwrap();
    let back = Snapshot::load(&path, FP).unwrap().expect("file exists now");
    assert_eq!(back, snapshot);

    // A garbage file at the path is an error, not a panic (and not Ok).
    std::fs::write(&path, b"not a snapshot at all").unwrap();
    assert!(Snapshot::load(&path, FP).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
