//! Crash-safety tests for the `rel-wal` layer (DESIGN.md §9.4).
//!
//! The harness runs a deterministic store/compact workload against the
//! in-memory [`FaultyFs`], then kills it at *every* operation index under
//! several torn-write survival policies, reopens whatever survived, and
//! asserts the recovery invariant:
//!
//! > recovered state ⊆ everything ever applied, and ⊇ everything whose
//! > append (or fold) was acknowledged — never a panic, never a verdict
//! > that was not written.
//!
//! On top of the kill matrix: truncation at every byte offset, a
//! single-byte-flip corruption matrix, foreign-fingerprint rejection, and
//! non-crash fault schedules (ENOSPC, short writes, failing fsyncs).

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;
use rel_constraint::{Constr, QueryKey, Validity};
use rel_index::Idx;
use rel_persist::{
    replay, wal_path, Fault, FaultScript, FaultyFs, Snapshot, UnsyncedSurvival, WalLimits,
    WalRecord, WalStore,
};

const FP: u64 = 0x5EED_BEEF;
const SNAP: &str = "/d/cache";

fn no_limits() -> WalLimits {
    WalLimits {
        max_bytes: u64::MAX,
        max_records: u64::MAX,
    }
}

fn key(i: u64) -> QueryKey {
    QueryKey::from_parts(
        FP,
        Vec::new(),
        Constr::Top,
        Constr::eq(Idx::nat(i), Idx::nat(i + 1)),
    )
}

fn verdict(i: u64) -> Validity {
    match i % 4 {
        0 => Validity::proved(),
        1 => Validity::Invalid(None),
        2 => Validity::Unknown,
        _ => Validity::grid_checked(),
    }
}

/// One verdict set: what a run acked (durable by contract) or applied (the
/// ceiling recovery may reach).
type Verdicts = Vec<(QueryKey, Validity)>;

/// The deterministic workload: 12 verdict appends with a compaction after
/// the 5th and the 10th.  Returns `(acked, applied)`: the pairs whose write
/// was acknowledged (durable by contract) and everything the in-memory
/// state held (the ceiling recovery may reach).
fn run_workload(fs: &FaultyFs) -> (Verdicts, Verdicts) {
    let (mut store, _recovery) =
        WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    let mut acked = Vec::new();
    let mut applied = Vec::new();
    for i in 0..12u64 {
        let (k, v) = (key(i), verdict(i));
        applied.push((k.clone(), v.clone()));
        if store.append_verdict(&k, &v).is_ok() {
            acked.push((k, v));
        }
        if i == 4 || i == 9 {
            // The fold mirrors the service: the snapshot carries the whole
            // in-memory state, acknowledged or not.
            let snapshot = Snapshot {
                fingerprint: FP,
                verdicts: applied.clone(),
                defs: Vec::new(),
                programs: Vec::new(),
            };
            if store.compact(&snapshot).is_ok() {
                acked = applied.clone();
            }
        }
    }
    (acked, applied)
}

/// Reopens the store over `fs` and flattens snapshot + replayed suffix into
/// one verdict list.
fn recover(fs: FaultyFs) -> Verdicts {
    let (_store, recovery) = WalStore::open(Arc::new(fs), Path::new(SNAP), FP, no_limits());
    let mut got = Vec::new();
    if let Some(snapshot) = &recovery.snapshot {
        got.extend(snapshot.verdicts.iter().cloned());
    }
    for record in &recovery.records {
        if let WalRecord::Verdict(k, v) = record {
            got.push((k.clone(), v.clone()));
        }
    }
    got
}

fn contains(set: &[(QueryKey, Validity)], pair: &(QueryKey, Validity)) -> bool {
    set.iter().any(|(k, v)| k == &pair.0 && v == &pair.1)
}

/// `acked ⊆ recovered ⊆ applied`, with verdicts matching exactly.
fn assert_invariant(
    context: &str,
    acked: &[(QueryKey, Validity)],
    applied: &[(QueryKey, Validity)],
    recovered: &[(QueryKey, Validity)],
) {
    for pair in acked {
        assert!(
            contains(recovered, pair),
            "{context}: acknowledged verdict lost: {pair:?}"
        );
    }
    for pair in recovered {
        assert!(
            contains(applied, pair),
            "{context}: recovered a verdict that was never written: {pair:?}"
        );
    }
}

#[test]
fn clean_shutdown_recovers_exactly_what_was_applied() {
    let fs = FaultyFs::new();
    let (acked, applied) = run_workload(&fs);
    assert_eq!(acked.len(), applied.len(), "fault-free run acks everything");
    let recovered = recover(fs.surviving());
    assert_invariant("clean shutdown", &acked, &applied, &recovered);
    for pair in &applied {
        assert!(contains(&recovered, pair), "clean shutdown lost {pair:?}");
    }
}

#[test]
fn roundtrip_replays_verdicts_defs_and_markers() {
    let fs = FaultyFs::new();
    let (mut store, _) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    for i in 0..6u64 {
        store.append_verdict(&key(i), &verdict(i)).unwrap();
    }
    let def = birelcost::StoredDef {
        name: "fib".to_string(),
        ok: true,
        proved: true,
        error: None,
    };
    store.append_def(7, 11, &def).unwrap();
    drop(store);

    let (reopened, recovery) =
        WalStore::open(Arc::new(fs.surviving()), Path::new(SNAP), FP, no_limits());
    assert_eq!(recovery.stats.replayed, 7);
    assert_eq!(recovery.stats.anomalies(), 0);
    assert!(recovery.warnings.is_empty(), "{:?}", recovery.warnings);
    assert_eq!(recovery.records.len(), 7);
    assert_eq!(
        recovery.records[6],
        WalRecord::Def {
            input_hash: 7,
            verify_hash: 11,
            def
        }
    );
    let stats = reopened.stats();
    assert_eq!(stats.replayed, 7);
    assert_eq!(stats.records, 7);
    assert!(stats.bytes > 0);
}

#[test]
fn kill_at_every_crash_point_never_loses_an_acknowledged_verdict() {
    // Pass 1: count the operations of a fault-free run.
    let probe = FaultyFs::new();
    run_workload(&probe);
    let total_ops = probe.op_count();
    assert!(total_ops > 20, "workload too small to be interesting");

    let policies = [
        UnsyncedSurvival::None,
        UnsyncedSurvival::All,
        UnsyncedSurvival::Prefix(1),
        UnsyncedSurvival::Prefix(7),
        UnsyncedSurvival::Prefix(19),
    ];
    for op in 0..total_ops {
        for policy in policies {
            let fs = FaultyFs::with_script(FaultScript::crash_at(op, policy));
            let (acked, applied) = run_workload(&fs);
            assert!(fs.crashed(), "op {op} never ran");
            let recovered = recover(fs.surviving());
            assert_invariant(
                &format!("crash at op {op} with {policy:?}"),
                &acked,
                &applied,
                &recovered,
            );
        }
    }
}

#[test]
fn enospc_short_writes_and_failing_fsyncs_degrade_without_loss() {
    let probe = FaultyFs::new();
    run_workload(&probe);
    let total_ops = probe.op_count();

    let faults = [Fault::Enospc, Fault::ShortWrite(3), Fault::SyncFail];
    for op in 0..total_ops {
        for fault in faults {
            let fs = FaultyFs::with_script(FaultScript::fault_at(op, fault));
            let (acked, applied) = run_workload(&fs);
            let recovered = recover(fs.surviving());
            assert_invariant(
                &format!("{fault:?} at op {op}"),
                &acked,
                &applied,
                &recovered,
            );
        }
    }
}

/// Builds a clean multi-record WAL image (no compactions) and the records
/// it replays to.
fn wal_image() -> (Vec<u8>, Vec<WalRecord>) {
    let fs = FaultyFs::new();
    let (mut store, _) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    for i in 0..8u64 {
        store.append_verdict(&key(i), &verdict(i)).unwrap();
    }
    let log = wal_path(Path::new(SNAP));
    let bytes = fs.bytes_of(&log).expect("wal written");
    let full = replay(&fs.surviving(), &log, FP);
    assert_eq!(full.stats.replayed, 8);
    (bytes, full.records)
}

/// Byte offsets at which the file ends on a whole frame (header included):
/// truncating there yields a *valid shorter log*, not a detectable tear.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut at = 16; // header
    let mut out = vec![at];
    while at + 20 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 20 + len;
        out.push(at);
    }
    out
}

#[test]
fn truncation_at_every_offset_replays_a_clean_prefix() {
    let (bytes, full) = wal_image();
    let log = wal_path(Path::new(SNAP));
    let boundaries = frame_boundaries(&bytes);
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    for cut in 0..bytes.len() {
        let fs = FaultyFs::new();
        fs.plant(&log, bytes[..cut].to_vec());
        let rep = replay(&fs, &log, FP);
        assert!(
            full.starts_with(&rep.records),
            "cut at {cut}: replayed records are not a prefix (got {})",
            rep.records.len()
        );
        assert!(
            rep.records.len() < full.len(),
            "cut at {cut} kept every record from a shorter file"
        );
        if let Some(whole) = boundaries.iter().position(|&b| b == cut) {
            // The file ends exactly on a frame: a clean shorter log.
            assert_eq!(rep.records.len(), whole, "cut at boundary {cut}");
            assert_eq!(rep.stats.anomalies(), 0, "boundary cut {cut} flagged");
        } else {
            // Mid-frame (or mid-header): the tear must be noticed.
            assert!(
                rep.stats.truncated_tail > 0 || rep.header_rejected || cut == 0,
                "cut at {cut}: a torn file replayed without an anomaly"
            );
        }
    }
}

#[test]
fn single_byte_flips_reject_frames_and_never_fabricate_records() {
    let (bytes, full) = wal_image();
    let log = wal_path(Path::new(SNAP));
    for offset in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0xFF;
        let fs = FaultyFs::new();
        fs.plant(&log, corrupt);
        let rep = replay(&fs, &log, FP);
        if offset < 16 {
            assert!(
                rep.header_rejected,
                "flip at header offset {offset} was not rejected"
            );
            assert!(rep.records.is_empty());
            continue;
        }
        for record in &rep.records {
            assert!(
                full.contains(record),
                "flip at {offset} fabricated a record: {record:?}"
            );
        }
        assert!(
            rep.records.len() < full.len(),
            "flip at {offset} left every record intact"
        );
        assert!(
            rep.stats.anomalies() > 0,
            "flip at {offset} replayed without an anomaly"
        );
    }
}

#[test]
fn frames_from_a_foreign_engine_are_rejected_not_replayed() {
    let fs = FaultyFs::new();
    let (mut store, _) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    store.append_verdict(&key(0), &verdict(0)).unwrap();
    store.append_verdict(&key(1), &verdict(1)).unwrap();
    drop(store);

    // Splice in a frame some other engine configuration wrote.  Its
    // checksum is self-consistent, so only the fingerprint check stands
    // between it and the cache.
    let log = wal_path(Path::new(SNAP));
    let mut bytes = fs.bytes_of(&log).unwrap();
    let foreign = rel_persist::encode_frame(FP ^ 1, &WalRecord::Verdict(key(99), verdict(0)));
    bytes.extend_from_slice(&foreign);
    let fs = FaultyFs::new();
    fs.plant(&log, bytes);

    let rep = replay(&fs, &log, FP);
    assert_eq!(rep.stats.replayed, 2);
    assert_eq!(rep.stats.fingerprint_rejected, 1);
    assert!(rep
        .records
        .iter()
        .all(|r| !matches!(r, WalRecord::Verdict(k, _) if *k == key(99))));

    // A whole log under a foreign fingerprint is rejected at the header.
    let rep = replay(&fs, &log, FP ^ 2);
    assert!(rep.header_rejected);
    assert!(rep.records.is_empty());
}

#[test]
fn stale_tmp_files_are_reaped_at_open() {
    let fs = FaultyFs::new();
    fs.plant(Path::new("/d/cache.tmp.123.0"), b"half a snapshot".to_vec());
    fs.plant(Path::new("/d/cache.wal.tmp.77.4"), b"half a log".to_vec());
    fs.plant(Path::new("/d/unrelated"), b"keep me".to_vec());
    let (_store, recovery) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    assert_eq!(recovery.reaped_tmp, 2);
    assert!(fs.bytes_of(Path::new("/d/cache.tmp.123.0")).is_none());
    assert!(fs.bytes_of(Path::new("/d/cache.wal.tmp.77.4")).is_none());
    assert!(fs.bytes_of(Path::new("/d/unrelated")).is_some());
}

#[test]
fn compaction_threshold_and_marker_counting() {
    let fs = FaultyFs::new();
    let limits = WalLimits {
        max_bytes: u64::MAX,
        max_records: 3,
    };
    let (mut store, _) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, limits);
    for i in 0..4u64 {
        store.append_verdict(&key(i), &verdict(i)).unwrap();
    }
    assert!(store.needs_compaction());
    let snapshot = Snapshot {
        fingerprint: FP,
        verdicts: (0..4).map(|i| (key(i), verdict(i))).collect(),
        defs: Vec::new(),
        programs: Vec::new(),
    };
    store.compact(&snapshot).unwrap();
    assert!(!store.needs_compaction());
    assert_eq!(store.stats().compactions, 1);
    assert_eq!(store.stats().records, 1, "only the marker remains");
    drop(store);

    // The folded state now lives in the snapshot; the log carries the marker.
    let (_store, recovery) = WalStore::open(Arc::new(fs.surviving()), Path::new(SNAP), FP, limits);
    assert_eq!(recovery.snapshot.as_ref().unwrap().verdicts.len(), 4);
    assert_eq!(recovery.stats.replayed, 0);
    assert_eq!(recovery.stats.compaction_markers, 1);
    assert!(
        !recovery.should_compact(),
        "marker-only log is already tight"
    );
}

// ---------------------------------------------------------------------------
// Property: random interleavings of stores, compactions and a crash point
// ---------------------------------------------------------------------------

/// Expands a seed into a deterministic op tape (splitmix64, same generator
/// as the proptest shim).
fn tape(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// Replays `ops` against a store: even values append a verdict, every 5th
/// compacts.  Same ack/applied bookkeeping as the fixed workload.
fn run_tape(fs: &FaultyFs, ops: &[u64]) -> (Verdicts, Verdicts) {
    let (mut store, _) = WalStore::open(Arc::new(fs.clone()), Path::new(SNAP), FP, no_limits());
    let mut acked = Vec::new();
    let mut applied = Vec::new();
    for (n, op) in ops.iter().enumerate() {
        if n % 5 == 4 {
            let snapshot = Snapshot {
                fingerprint: FP,
                verdicts: applied.clone(),
                defs: Vec::new(),
                programs: Vec::new(),
            };
            if store.compact(&snapshot).is_ok() {
                acked = applied.clone();
            }
        } else {
            let i = op % 32;
            let (k, v) = (key(i), verdict(i));
            if !contains(&applied, &(k.clone(), v.clone())) {
                applied.push((k.clone(), v.clone()));
            }
            if store.append_verdict(&k, &v).is_ok() && !contains(&acked, &(k.clone(), v.clone())) {
                acked.push((k, v));
            }
        }
    }
    (acked, applied)
}

proptest! {
    #[test]
    fn any_interleaving_with_any_crash_point_recovers_the_acked_state(
        seed in 0u64..u64::MAX,
        len in 4usize..24,
        crash_frac in 0u64..1_000,
        keep in 0usize..24,
    ) {
        let ops = tape(seed, len);

        // Bound the crash point by a probe run's op count.
        let probe = FaultyFs::new();
        run_tape(&probe, &ops);
        let total = probe.op_count();
        let crash_op = crash_frac % total.max(1);

        let fs = FaultyFs::with_script(FaultScript::crash_at(
            crash_op,
            UnsyncedSurvival::Prefix(keep),
        ));
        let (acked, applied) = run_tape(&fs, &ops);
        let recovered = recover(fs.surviving());
        assert_invariant(
            &format!("seed {seed} len {len} crash {crash_op} keep {keep}"),
            &acked,
            &applied,
            &recovered,
        );

        // And the same tape with a clean shutdown loses nothing at all.
        let fs = FaultyFs::new();
        let (_, applied) = run_tape(&fs, &ops);
        let recovered = recover(fs.surviving());
        for pair in &applied {
            assert!(contains(&recovered, pair), "clean shutdown lost {pair:?}");
        }
    }
}
