//! Minimal, dependency-free shim for the subset of the `rand` crate API this
//! workspace uses (`StdRng::seed_from_u64` + `Rng::gen_range` over integer
//! ranges).  The container has no registry access, so the real crate cannot be
//! vendored; all call sites only need *deterministic, seeded* pseudo-random
//! streams, which the splitmix64 generator below provides.
//!
//! The stream differs from the real `StdRng` (ChaCha12), which is fine: every
//! consumer treats the seed as an opaque reproducibility token, never as a
//! cross-implementation contract.

use std::ops::Range;

/// Seeding trait mirroring `rand::SeedableRng` for the one constructor used.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `lo..hi` (callers guarantee `lo < hi`).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from the half-open range `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i32, i64, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush, one add + two xor-shifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn values_respect_the_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(100..200);
            assert!((100..200).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }
}
