//! Minimal, dependency-free shim for the subset of the `proptest` API the
//! workspace tests use.  The container has no registry access, so the real
//! crate cannot be vendored.  This stand-in keeps the source-level surface —
//! `Strategy`, `Just`, integer ranges, tuples, `prop_oneof!`, `prop_map`,
//! `prop_recursive`, and the `proptest!` test macro — but generates cases from
//! a fixed-seed splitmix64 stream (256 cases per property) instead of doing
//! adaptive shrinking.  Failures therefore reproduce deterministically, which
//! is what the round-trip/normalization properties in this workspace need.

use std::rc::Rc;

/// Deterministic case generator (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test-specific label.
    pub fn from_label(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng))))
    }

    /// Builds a recursive strategy by unrolling `depth` levels of `expand`
    /// over the leaf strategy `self`, mixing leaves back in at every level so
    /// generated trees vary in size.  (`_size`/`_branch` are accepted for
    /// source compatibility with the real API and ignored.)
    fn prop_recursive<F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(strat);
            let leaf = leaf.clone();
            strat = BoxedStrategy(Rc::new(move |rng| {
                if rng.pick(4) == 0 {
                    leaf.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            }));
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Picks uniformly among strategies with a common value type.
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty());
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.pick(arms.len());
        arms[i].generate(rng)
    }))
}

/// Mirrors `proptest::prop_oneof!`: a uniform choice among the given arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Mirrors `proptest::proptest!`: each property runs 256 deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident ( $($var:ident in $strat:expr),+ $(,)? ) $body:block)+) => {$(
        #[test]
        fn $name() {
            let mut rng = $crate::TestRng::from_label(stringify!($name));
            for case in 0..256u32 {
                let _ = case;
                $(let $var = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )+};
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The one-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, union, BoxedStrategy, Just, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), Just(2u64), 10u64..20]
    }

    proptest! {
        #[test]
        fn generated_values_come_from_the_arms(v in arb_small()) {
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u64..5, 0i64..5).prop_map(|(a, b)| (a as i64) + b) ) {
            assert!((0..9).contains(&pair));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u64..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_label("trees");
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth >= 1, "recursion never expanded");
    }
}
