//! Minimal, dependency-free shim for the subset of the `criterion` API the
//! `rel-bench` benches use.  The container has no registry access, so the real
//! harness cannot be vendored; this stand-in runs each benchmark closure a
//! configurable number of iterations, reports min/mean wall-clock per
//! iteration, and keeps the exact `criterion_group!`/`criterion_main!` macro
//! surface so the bench sources stay unmodified and drop-in compatible with
//! the real crate if it ever becomes available.

use std::time::{Duration, Instant};

/// Re-export of the standard black box so `criterion::black_box` resolves.
pub use std::hint::black_box;

/// Top-level benchmark driver (configuration builder + runner).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time budget (one untimed iteration is always run).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and overrides.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            measurement_time: self.parent.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finishes the group (marker for API compatibility).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing loop.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` iterations of `routine` (after one warm-up call),
    /// stopping early when the measurement-time budget is exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Mirrors `criterion::criterion_group!` (both the struct-ish and plain forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
