//! `birelcost` — command-line front end for the BiRelCost checker.
//!
//! ```text
//! birelcost check [FLAGS] FILE...  type check one or more .rc programs
//! birelcost serve [FLAGS]          newline-delimited JSON daemon on
//!                                  stdin/stdout: {"check": "<source>"} ->
//!                                  per-def verdicts, timings, cache stats
//! birelcost explain NAME           re-check the bundled benchmark NAME with
//!                                  the span recorder armed and narrate the
//!                                  verdict: phase breakdown, where the time
//!                                  went, and — for grid-backed verdicts —
//!                                  which binding cap exhausted the
//!                                  existential search
//! birelcost validate-metrics FILE  check a --metrics-out dump against the
//!                                  documented schema (exit 1 on drift)
//! birelcost table1                 re-run the Table-1 benchmark suite
//! birelcost list                   list the bundled benchmarks
//!
//! FLAGS (shared by check and serve):
//!   --jobs N, -j N       worker threads (check: default 1; serve: all cores)
//!   --cache-file PATH    warm-start persistence: load the snapshot at PATH
//!                        (if any) before checking, save it back afterwards
//!                        (serve: periodically and on shutdown).  Unchanged
//!                        definitions are skipped; everything else reuses the
//!                        persisted validity cache and program memo.
//!
//! FLAGS (check only):
//!   --metrics-out PATH   write the merged metrics snapshot (solver counters,
//!                        request histograms, cache gauges; DESIGN.md §8.2
//!                        schema) to PATH after checking
//!   --trace-out PATH     record spans while checking and write a
//!                        chrome://tracing-loadable trace to PATH
//!
//! FLAGS (serve only):
//!   --listen ADDR        serve the NDJSON protocol on a TCP socket instead
//!                        of stdin/stdout ({"shutdown": true} stops it);
//!                        runs the multiplexed reactor: many connections
//!                        over one worker pool, responses in finish order
//!                        (tag requests with "id" and match on the echo)
//!   --http ADDR          serve the same content over HTTP/1.1 (POST /check,
//!                        GET /metrics, GET /cache/stats, POST /shutdown);
//!                        composable with --listen — both planes share the
//!                        workers, the caches and the bounded queue
//!   --max-queue N        bound on queued-but-unstarted requests across all
//!                        connections; excess requests answer
//!                        {"error": "backpressure"} (HTTP 503) immediately
//!   --request-timeout-ms N   wall-clock budget per request; a request over
//!                        budget answers {"error": "deadline"} while its
//!                        worker drains in the background
//!   --idle-timeout-ms N  (--listen/--http only) disconnect a client whose
//!                        socket stays silent this long
//!   --replica ADDR       serve the daemon-to-daemon replication plane on a
//!                        TCP socket: peers ship WAL frames here and they
//!                        are applied through the same validation path as
//!                        crash recovery (checksum + engine fingerprint)
//!   --peer ADDR          replicate every memoized verdict to the daemon
//!                        whose --replica plane listens at ADDR (repeatable;
//!                        each peer gets a supervised session with
//!                        exponential backoff and anti-entropy catch-up)
//!   --replica-queue N    per-peer replication queue bound; overflow
//!                        degrades that peer to catch-up instead of
//!                        delaying client requests (default 1024)
//! ```

use std::env;
use std::fs;
use std::io;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use birelcost::Engine;
use rel_constraint::SearchExhaustedReason;
use rel_service::{
    serve_reactor, serve_with, BatchJob, BatchStats, CodecKind, CodecLimits, PeriodicSave,
    ReactorOptions, RealNet, ReplicaOptions, ServeOptions, Service, ServiceConfig,
};
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

const USAGE: &str = "usage: birelcost <check [--jobs N] [--cache-file PATH] [--metrics-out PATH] \
     [--trace-out PATH] FILE...|serve [--jobs N] [--cache-file PATH] [--listen ADDR] \
     [--http ADDR] [--replica ADDR] [--peer ADDR]... [--replica-queue N] [--max-queue N] \
     [--request-timeout-ms N] [--idle-timeout-ms N]\
     |explain NAME|validate-metrics FILE|table1|list>";

/// How often the daemon flushes its warm state to the cache file.
const SERVE_FLUSH_INTERVAL: Duration = Duration::from_secs(60);

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => match Flags::parse(rest) {
            // Without --jobs, `check` stays sequential (the seed behaviour).
            Ok((flags, files)) => check_files(&files, &flags),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "serve" => match Flags::parse(rest) {
            Ok((flags, extra)) if extra.is_empty() => serve_stdio(&flags),
            Ok(_) => usage_error("serve takes no positional arguments"),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "explain" => match rest {
            [name] => explain(name),
            _ => usage_error("explain takes exactly one benchmark name"),
        },
        Some((cmd, rest)) if cmd == "validate-metrics" => match rest {
            [file] => validate_metrics_file(file),
            _ => usage_error("validate-metrics takes exactly one file"),
        },
        Some((cmd, _)) if cmd == "table1" => table1(),
        Some((cmd, _)) if cmd == "list" => list(),
        _ => usage_error("unknown command"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("birelcost: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The flags shared by the `check` and `serve` subcommands, parsed in one
/// place so each flag (and its `--flag=value` spelling) is handled once.
#[derive(Debug, Default)]
struct Flags {
    /// Worker threads (`None` — each subcommand picks its own default).
    jobs: Option<usize>,
    /// Warm-start snapshot path.
    cache_file: Option<String>,
    /// Where to write the metrics snapshot after `check`.
    metrics_out: Option<String>,
    /// Where to write the chrome://tracing span trace after `check`.
    trace_out: Option<String>,
    /// TCP address for `serve --listen` (stdio when absent).
    listen: Option<String>,
    /// TCP address for the HTTP/1.1 plane (`serve --http`).
    http: Option<String>,
    /// Bound on queued-but-unstarted requests for the reactor planes.
    max_queue: Option<usize>,
    /// Per-request wall-clock budget for `serve`.
    request_timeout_ms: Option<u64>,
    /// Socket idle timeout for `serve --listen`/`--http`.
    idle_timeout_ms: Option<u64>,
    /// TCP address for the replication plane (`serve --replica`).
    replica: Option<String>,
    /// Replication peer addresses (`serve --peer`, repeatable).
    peers: Vec<String>,
    /// Per-peer replication queue bound (`serve --replica-queue`).
    replica_queue: Option<usize>,
}

impl Flags {
    /// Splits an argument list into recognized flags and positional rest.
    fn parse(args: &[String]) -> Result<(Flags, Vec<String>), String> {
        let mut flags = Flags::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut flag_value =
                |name: &str, short: Option<&str>| -> Result<Option<String>, String> {
                    if arg == name || short.is_some_and(|s| arg == s) {
                        return match it.next() {
                            Some(v) => Ok(Some(v.clone())),
                            None => Err(format!("{arg} requires a value")),
                        };
                    }
                    Ok(arg
                        .strip_prefix(name)
                        .and_then(|r| r.strip_prefix('='))
                        .map(str::to_string))
                };
            if let Some(n) = flag_value("--jobs", Some("-j"))? {
                flags.jobs = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("invalid worker count `{n}`"))?
                        .max(1),
                );
            } else if let Some(path) = flag_value("--cache-file", None)? {
                flags.cache_file = Some(path);
            } else if let Some(path) = flag_value("--metrics-out", None)? {
                flags.metrics_out = Some(path);
            } else if let Some(path) = flag_value("--trace-out", None)? {
                flags.trace_out = Some(path);
            } else if let Some(addr) = flag_value("--listen", None)? {
                flags.listen = Some(addr);
            } else if let Some(addr) = flag_value("--http", None)? {
                flags.http = Some(addr);
            } else if let Some(n) = flag_value("--max-queue", None)? {
                let cap = n
                    .parse::<usize>()
                    .map_err(|_| format!("invalid queue bound `{n}`"))?;
                if cap == 0 {
                    return Err("--max-queue must be positive".to_string());
                }
                flags.max_queue = Some(cap);
            } else if let Some(n) = flag_value("--request-timeout-ms", None)? {
                flags.request_timeout_ms = Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("invalid timeout `{n}`"))?,
                );
            } else if let Some(addr) = flag_value("--replica", None)? {
                flags.replica = Some(addr);
            } else if let Some(addr) = flag_value("--peer", None)? {
                flags.peers.push(addr);
            } else if let Some(n) = flag_value("--replica-queue", None)? {
                let cap = n
                    .parse::<usize>()
                    .map_err(|_| format!("invalid queue bound `{n}`"))?;
                if cap == 0 {
                    return Err("--replica-queue must be positive".to_string());
                }
                flags.replica_queue = Some(cap);
            } else if let Some(n) = flag_value("--idle-timeout-ms", None)? {
                let ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("invalid timeout `{n}`"))?;
                if ms == 0 {
                    // A zero socket timeout means "no timeout" to the OS,
                    // the opposite of what the flag reads as; reject it.
                    return Err("--idle-timeout-ms must be positive".to_string());
                }
                flags.idle_timeout_ms = Some(ms);
            } else if arg.starts_with('-') {
                return Err(format!("unknown flag `{arg}`"));
            } else {
                rest.push(arg.clone());
            }
        }
        Ok((flags, rest))
    }
}

/// Builds the service for one invocation: worker pool plus, when requested,
/// the warm-start snapshot and its write-ahead log (load errors are
/// warnings — a bad cache file means recovering whatever validated, never a
/// failed run).
fn service_with(workers: usize, cache_file: Option<&str>) -> Service {
    let service = Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    if let Some(path) = cache_file {
        let outcome = service.attach_cache_file(path);
        if let Some(warning) = &outcome.warning {
            eprintln!("birelcost: warning: {warning} (recovered what validated)");
        }
        // One machine-greppable line either way (the fault-injection CI
        // smoke asserts on the replay counters after a SIGKILL).
        eprintln!(
            "birelcost: cache-file {path}: loaded {} verdict(s), {} def hash(es), \
             {} program(s); replayed {} wal record(s), {} anomaly(ies); reaped {} tmp file(s)",
            outcome.verdicts,
            outcome.defs,
            outcome.programs,
            outcome.wal_records,
            outcome.wal_anomalies,
            outcome.reaped_tmp
        );
    }
    service
}

/// Saves the warm state back to the attached cache file, reporting failures
/// without failing the run.
fn flush_cache(service: &Service) {
    if service.cache_file().is_none() {
        return;
    }
    match service.save_cache() {
        Ok(verdicts) => eprintln!(
            "birelcost: cache-file {}: saved {verdicts} verdict(s), {} def hash(es)",
            service.cache_file().unwrap().display(),
            service.def_index().len()
        ),
        Err(e) => eprintln!("birelcost: {e}"),
    }
}

fn check_files(files: &[String], flags: &Flags) -> ExitCode {
    if flags.listen.is_some()
        || flags.http.is_some()
        || flags.max_queue.is_some()
        || flags.request_timeout_ms.is_some()
        || flags.idle_timeout_ms.is_some()
        || flags.replica.is_some()
        || !flags.peers.is_empty()
        || flags.replica_queue.is_some()
    {
        return usage_error(
            "--listen/--http/--replica/--peer/--replica-queue/--max-queue/--request-timeout-ms\
             /--idle-timeout-ms are serve flags",
        );
    }
    if files.is_empty() {
        eprintln!("birelcost check: no input files");
        return ExitCode::from(2);
    }
    let workers = flags.jobs.unwrap_or(1);

    // Read everything up front so I/O failures are reported per file and the
    // batch itself is pure checking work.
    let mut jobs = Vec::new();
    let mut ok = true;
    for file in files {
        match fs::read_to_string(file) {
            Ok(source) => jobs.push(BatchJob::new(file.clone(), source)),
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                ok = false;
            }
        }
    }

    // Arm the span recorder only when a trace was asked for: recording is
    // cheap but not free, and `check` is also the benchmark harness.
    if flags.trace_out.is_some() {
        rel_obs::RelObsConfig::on().apply();
        rel_obs::take_events(); // drop anything recorded before this run
    }

    let service = service_with(workers, flags.cache_file.as_deref());
    let results = service.check_batch(&jobs);
    for result in &results {
        let file = &result.name;
        match &result.outcome {
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
            Ok(report) => {
                for def in &report.defs {
                    let status = if def.ok { "ok" } else { "FAIL" };
                    // Verdict provenance: `proved` means every obligation was
                    // discharged symbolically (greedy linear search or
                    // Fourier–Motzkin) — sound over the unbounded domain;
                    // `grid` means the verdict leaned on the bounded numeric
                    // sweep.  Replayed verdicts show the provenance they were
                    // recorded with.
                    let via = if !def.ok {
                        "-"
                    } else if def.proved {
                        "proved"
                    } else {
                        "grid"
                    };
                    let unchanged = if def.skipped_unchanged {
                        "  [unchanged, skipped]"
                    } else {
                        ""
                    };
                    println!(
                        "{file}: {:<12} {:<4} [{via:>6}]  total {:?}  (tc {:?}, exelim {:?}, solve {:?}){unchanged}",
                        def.name,
                        status,
                        def.timings.total(),
                        def.timings.typecheck,
                        def.timings.existential_elim,
                        def.timings.solving
                    );
                    if let Some(err) = &def.error {
                        println!("{file}:   reason: {err}");
                    }
                }
                ok &= report.all_ok();
            }
        }
    }

    let stats = BatchStats::of(&results);
    // One greppable provenance line per run: how much of the verdict rests
    // on proofs vs bounded grid sweeps (the CI gate asserts grid_points=0
    // for the verified suite through the library, but operators read it
    // here).
    println!(
        "provenance: proved_defs={}/{} fm_proved={} grid_accepted={} grid_points={} \
         fm_memo_hits={} fm_memo_misses={} exelim_pruned={}",
        stats.proved_defs,
        stats.defs_ok,
        stats.solve.fm_proved,
        stats.solve.grid_accepted,
        results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|rep| rep.points_evaluated())
            .sum::<usize>(),
        stats.solve.fm_memo_hits,
        stats.solve.fm_memo_misses,
        stats.solve.exelim_candidates_pruned
    );
    if workers > 1 {
        let cache = service.cache_stats();
        println!(
            "checked {} file(s) on {workers} workers: {}/{} defs ok, cache {} hit(s) / {} miss(es), \
             {} numeric program(s) compiled ({} reused)",
            results.len(),
            stats.defs_ok,
            stats.defs,
            cache.hits,
            cache.misses,
            stats.solve.programs_compiled,
            stats.solve.program_cache_hits
        );
    }
    if flags.cache_file.is_some() {
        // One machine-greppable line for warm-start harnesses (CI smoke
        // asserts on these counters).
        println!(
            "warm-start: defs={} cache_hits={} cache_misses={} skipped_unchanged={} \
             programs_compiled={} program_cache_hits={}",
            stats.defs,
            stats.solve.cache_hits,
            stats.solve.cache_misses,
            stats.skipped_unchanged,
            stats.solve.programs_compiled,
            stats.solve.program_cache_hits
        );
        flush_cache(&service);
    }

    if let Some(path) = &flags.metrics_out {
        match fs::write(path, service.metrics_snapshot().to_json() + "\n") {
            Ok(()) => eprintln!("birelcost: metrics written to {path}"),
            Err(e) => {
                eprintln!("{path}: cannot write metrics: {e}");
                ok = false;
            }
        }
    }
    if let Some(path) = &flags.trace_out {
        let events = rel_obs::take_events();
        rel_obs::RelObsConfig::off().apply();
        match fs::write(path, rel_obs::chrome_trace(&events)) {
            Ok(()) => eprintln!(
                "birelcost: {} trace event(s) written to {path} (load in chrome://tracing)",
                events.len()
            ),
            Err(e) => {
                eprintln!("{path}: cannot write trace: {e}");
                ok = false;
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn serve_stdio(flags: &Flags) -> ExitCode {
    if flags.metrics_out.is_some() || flags.trace_out.is_some() {
        return usage_error(
            "--metrics-out/--trace-out are check flags; ask a running daemon with {\"metrics\": \"dump\"}",
        );
    }
    // The daemon defaults to the machine's parallelism: it exists to serve
    // traffic, and `{"batch": ...}` requests should use the cores without an
    // explicit flag.
    let workers = flags.jobs.unwrap_or_else(rel_service::available_workers);
    let service = service_with(workers, flags.cache_file.as_deref());

    // Outbound replication: one supervised session per --peer, shipping
    // every memoized verdict/def over TCP with backoff and anti-entropy.
    if !flags.peers.is_empty() {
        let options = ReplicaOptions {
            peers: flags.peers.clone(),
            queue: flags
                .replica_queue
                .unwrap_or_else(|| ReplicaOptions::default().queue),
            ..ReplicaOptions::default()
        };
        eprintln!(
            "birelcost serve: replicating to {} peer(s): {}",
            options.peers.len(),
            options.peers.join(", ")
        );
        service.enable_replication(Arc::new(RealNet::default()), options);
    }

    // Periodic flusher: a long-running daemon should not lose its warm state
    // to a crash or kill.  The thread wakes every second to notice shutdown
    // (and a WAL over its compaction thresholds) promptly, but only
    // dirty-flushes once per SERVE_FLUSH_INTERVAL.  Save failures degrade
    // gracefully: `periodic_save` owns a capped exponential backoff, warns
    // once per state change, and the daemon keeps serving from memory.
    let stop = Arc::new(AtomicBool::new(false));
    let flusher = flags.cache_file.is_some().then(|| {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut since_flush = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_secs(1));
                since_flush += Duration::from_secs(1);
                // Threshold-driven compaction runs off the store path: the
                // observers only flag it, this tick folds the log.
                if let Err(e) = service.compact_if_due() {
                    eprintln!("birelcost serve: wal compaction failed: {e}");
                }
                // While healthy, save once per interval; while failing, the
                // tick offers every second and the backoff window inside
                // `periodic_save` decides when a retry actually runs.
                if since_flush >= SERVE_FLUSH_INTERVAL || service.save_backoff_active() {
                    match service.periodic_save() {
                        PeriodicSave::Ok { recovered, .. } => {
                            since_flush = Duration::ZERO;
                            if recovered {
                                eprintln!(
                                    "birelcost serve: periodic flush recovered; \
                                     persistence is healthy again"
                                );
                            }
                        }
                        PeriodicSave::Deferred => {}
                        PeriodicSave::Failed {
                            error,
                            warn,
                            backoff_ms,
                        } => {
                            if warn {
                                eprintln!(
                                    "birelcost serve: periodic flush failed: {error}; \
                                     retrying with backoff (next attempt in {backoff_ms}ms), \
                                     serving continues from memory"
                                );
                            }
                        }
                    }
                }
            }
        })
    });

    let outcome = if flags.listen.is_some() || flags.http.is_some() || flags.replica.is_some() {
        // Socket planes run the multiplexed reactor: every listed address
        // (NDJSON and/or HTTP) shares one worker pool, one bounded queue
        // and one set of caches.
        serve_sockets(&service, flags, workers)
    } else {
        let options = ServeOptions {
            request_timeout: flags.request_timeout_ms.map(Duration::from_millis),
            io_timeout: None,
        };
        let stdin = io::stdin();
        let stdout = io::stdout();
        serve_with(&service, stdin.lock(), stdout.lock(), options).map(|summary| {
            format!(
                "handled {} request(s), {} error(s), {} deadline(s)",
                summary.requests, summary.errors, summary.deadlines
            )
        })
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = flusher {
        let _ = handle.join();
    }
    // Stop peer sessions before the final flush so no session is mid-ship
    // while the process winds down (receivers heal any cut-off tail by
    // anti-entropy on our next start).
    service.shutdown_replication();
    // On-shutdown flush: runs after the serving loop drained any timed-out
    // workers, so the final state includes everything they memoized.
    flush_cache(&service);

    match outcome {
        Ok(report) => {
            eprintln!("birelcost serve: {report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("birelcost serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Binds the requested socket planes and runs the reactor over them,
/// returning the summary line for the shutdown report.
fn serve_sockets(service: &Service, flags: &Flags, workers: usize) -> io::Result<String> {
    let mut listeners = Vec::new();
    let planes = [
        (&flags.listen, CodecKind::Ndjson),
        (&flags.http, CodecKind::Http),
        (&flags.replica, CodecKind::Replica),
    ];
    for (addr, kind) in planes {
        let Some(addr) = addr else { continue };
        let listener = TcpListener::bind(addr)
            .map_err(|e| io::Error::new(e.kind(), format!("cannot listen on {addr}: {e}")))?;
        eprintln!(
            "birelcost serve: {} plane listening on {}",
            kind.label(),
            listener
                .local_addr()
                .map_or(addr.clone(), |a| a.to_string())
        );
        listeners.push((listener, kind));
    }
    let options = ReactorOptions {
        workers,
        max_queue: flags.max_queue.unwrap_or((workers * 32).max(64)),
        request_timeout: flags.request_timeout_ms.map(Duration::from_millis),
        idle_timeout: flags.idle_timeout_ms.map(Duration::from_millis),
        limits: CodecLimits::default(),
    };
    let summary = serve_reactor(service, listeners, options)?;
    Ok(format!(
        "handled {} request(s) over {} connection(s): {} error(s), {} deadline(s), \
         {} backpressure refusal(s), {} conn error(s), {} idle disconnect(s)",
        summary.requests,
        summary.connections,
        summary.errors,
        summary.deadlines,
        summary.backpressure,
        summary.conn_errors,
        summary.idle_disconnects
    ))
}

/// Renders a nanosecond duration at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `birelcost explain NAME`: re-checks one bundled benchmark with the span
/// recorder armed and narrates the verdict from what was actually recorded —
/// the phase tree, where the wall clock went, and which binding cap (if any)
/// exhausted the existential search and forced the grid fallback.
fn explain(name: &str) -> ExitCode {
    let Some(bench) = all_benchmarks().into_iter().find(|b| b.name == name) else {
        eprintln!("birelcost explain: no bundled benchmark named `{name}` (see `birelcost list`)");
        return ExitCode::from(2);
    };
    let program = match parse_program(bench.source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("birelcost explain: {name}: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    rel_obs::RelObsConfig::on().apply();
    rel_obs::take_events(); // drop anything recorded before this run
    let report = Engine::new().check_program(&program);
    let events = rel_obs::take_events();
    rel_obs::RelObsConfig::off().apply();

    for def in &report.defs {
        let status = if def.ok { "ok" } else { "FAIL" };
        let via = if !def.ok {
            "-"
        } else if def.proved {
            "proved"
        } else {
            "grid"
        };
        println!(
            "{name}: {} {status} [{via}]  total {:?}",
            def.name,
            def.timings.total()
        );
        if let Some(err) = &def.error {
            println!("  reason: {err}");
        }
    }

    // Phase breakdown: every span name aggregated over the recorded tree,
    // shown at the depth it first occurred, in first-occurrence order.
    let trees = rel_obs::build_trees(&events);
    let span_count: usize = events
        .iter()
        .filter(|e| e.kind == rel_obs::EventKind::Begin)
        .count();
    println!(
        "\nrecorded phases ({} thread(s), {span_count} span(s)):",
        trees.len()
    );
    let mut order: Vec<&'static str> = Vec::new();
    let mut rows: std::collections::HashMap<&'static str, (usize, u64, u64)> =
        std::collections::HashMap::new();
    for tree in &trees {
        for root in &tree.roots {
            root.walk(&mut |node, depth| {
                let row = rows.entry(node.name).or_insert_with(|| {
                    order.push(node.name);
                    (depth, 0, 0)
                });
                row.0 = row.0.min(depth);
                row.1 += 1;
                row.2 += node.duration_ns();
            });
        }
    }
    for span_name in &order {
        let (depth, count, total) = rows[span_name];
        let label = format!("{:indent$}{span_name}", "", indent = depth * 2);
        println!("  {label:<32} {count:>6}×  {:>9}", fmt_ns(total));
    }

    // Binding caps, read back from the recorded exhaustion instants — the
    // narrative names whatever the search actually logged, not a guess.
    let mut caps: Vec<(&'static str, u64, usize)> = Vec::new();
    for e in &events {
        if e.kind != rel_obs::EventKind::Instant {
            continue;
        }
        let tagged = e.name.strip_prefix("exelim.exhausted.").is_some()
            || e.name.strip_prefix("fm.abstain.").is_some();
        if !tagged {
            continue;
        }
        match caps.iter_mut().find(|(n, _, _)| *n == e.name) {
            Some(row) => {
                row.1 = row.1.max(e.arg);
                row.2 += 1;
            }
            None => caps.push((e.name, e.arg, 1)),
        }
    }
    if caps.is_empty() {
        println!("\nno binding cap fired: the existential search never gave up.");
    } else {
        println!("\nbinding caps (recorded exhaustion events):");
        for (event_name, arg, count) in &caps {
            let tag = event_name.rsplit('.').next().unwrap_or_default();
            match SearchExhaustedReason::parse(tag) {
                Some(reason) => println!(
                    "  {event_name:<36} {count:>4}×  limit {arg}  — {}",
                    reason.describe()
                ),
                // e.g. exelim.exhausted.candidates: the pool ran dry without
                // hitting a cap; the argument is the attempts spent.
                None => println!("  {event_name:<36} {count:>4}×  after {arg} attempt(s)"),
            }
        }
    }
    for def in &report.defs {
        if let Some(reason) = def.stats.search_exhausted {
            // The recorded instant carrying this reason has the limit that
            // actually fired.
            let limit = caps
                .iter()
                .find(|(n, _, _)| n.ends_with(reason.as_str()))
                .map(|(_, limit, _)| *limit);
            let outcome = if def.ok {
                "the verdict leaned on the bounded numeric grid"
            } else {
                "the obligation was reported unprovable"
            };
            print!(
                "\n{} gave up its existential search at {} ({})",
                def.name,
                reason.describe(),
                reason.as_str()
            );
            match limit {
                Some(l) => println!(", limit {l}, so {outcome}."),
                None => println!(", so {outcome}."),
            }
        }
    }

    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `birelcost validate-metrics FILE`: checks a `--metrics-out` dump (or a
/// daemon `{"metrics": "dump"}` response) against the documented schema.
fn validate_metrics_file(file: &str) -> ExitCode {
    let text = match fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: cannot read: {e}");
            return ExitCode::from(2);
        }
    };
    match rel_service::validate_metrics(&text) {
        Ok(s) => {
            println!(
                "{file}: ok — schema v{}, {} counter(s), {} gauge(s), {} histogram(s)",
                rel_obs::SCHEMA_VERSION,
                s.counters,
                s.gauges,
                s.histograms
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{file}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn table1() -> ExitCode {
    let engine = Engine::new();
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12} {:>9} {:>9}  result",
        "Benchmark",
        "total(s)",
        "typecheck(s)",
        "exist.elim(s)",
        "solving(s)",
        "points",
        "programs"
    );
    for b in all_benchmarks() {
        let program = match parse_program(b.source) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<10} parse error: {e}", b.name);
                continue;
            }
        };
        let report = engine.check_program(&program);
        let timings = report
            .def(b.main_def)
            .map(|d| d.timings)
            .unwrap_or_default();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>14.3} {:>12.3} {:>9} {:>9}  {}",
            b.name,
            report.total_time().as_secs_f64(),
            timings.typecheck.as_secs_f64(),
            timings.existential_elim.as_secs_f64(),
            timings.solving.as_secs_f64(),
            report.points_evaluated(),
            report.programs_compiled(),
            if report.all_ok() {
                "checked"
            } else {
                "not verified"
            }
        );
    }
    ExitCode::SUCCESS
}

fn list() -> ExitCode {
    for b in all_benchmarks() {
        let status = match b.status {
            VerificationStatus::Verified => "verified",
            VerificationStatus::Unverified => "unverified",
        };
        println!("{:<10} [{status:>10}]  {}", b.name, b.description);
    }
    ExitCode::SUCCESS
}
