//! `birelcost` — command-line front end for the BiRelCost checker.
//!
//! ```text
//! birelcost check FILE...      type check one or more .rc programs
//! birelcost table1             re-run the Table-1 benchmark suite
//! birelcost list               list the bundled benchmarks
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use birelcost::Engine;
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => check_files(rest),
        Some((cmd, _)) if cmd == "table1" => table1(),
        Some((cmd, _)) if cmd == "list" => list(),
        _ => {
            eprintln!("usage: birelcost <check FILE...|table1|list>");
            ExitCode::from(2)
        }
    }
}

fn check_files(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("birelcost check: no input files");
        return ExitCode::from(2);
    }
    let engine = Engine::new();
    let mut ok = true;
    for file in files {
        let source = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match parse_program(&source) {
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
            Ok(program) => {
                let report = engine.check_program(&program);
                for def in &report.defs {
                    let status = if def.ok { "ok" } else { "FAIL" };
                    println!(
                        "{file}: {:<12} {:<4}  total {:?}  (tc {:?}, exelim {:?}, solve {:?})",
                        def.name,
                        status,
                        def.timings.total(),
                        def.timings.typecheck,
                        def.timings.existential_elim,
                        def.timings.solving
                    );
                    if let Some(err) = &def.error {
                        println!("{file}:   reason: {err}");
                    }
                }
                ok &= report.all_ok();
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn table1() -> ExitCode {
    let engine = Engine::new();
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12}  result",
        "Benchmark", "total(s)", "typecheck(s)", "exist.elim(s)", "solving(s)"
    );
    for b in all_benchmarks() {
        let program = match parse_program(b.source) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<10} parse error: {e}", b.name);
                continue;
            }
        };
        let report = engine.check_program(&program);
        let timings = report
            .def(b.main_def)
            .map(|d| d.timings)
            .unwrap_or_default();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>14.3} {:>12.3}  {}",
            b.name,
            report.total_time().as_secs_f64(),
            timings.typecheck.as_secs_f64(),
            timings.existential_elim.as_secs_f64(),
            timings.solving.as_secs_f64(),
            if report.all_ok() { "checked" } else { "not verified" }
        );
    }
    ExitCode::SUCCESS
}

fn list() -> ExitCode {
    for b in all_benchmarks() {
        let status = match b.status {
            VerificationStatus::Verified => "verified",
            VerificationStatus::Unverified => "unverified",
        };
        println!("{:<10} [{status:>10}]  {}", b.name, b.description);
    }
    ExitCode::SUCCESS
}
