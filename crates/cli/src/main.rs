//! `birelcost` — command-line front end for the BiRelCost checker.
//!
//! ```text
//! birelcost check FILE...          type check one or more .rc programs
//! birelcost check --jobs N FILE... check files concurrently on N workers,
//!                                  sharing one constraint-validity cache
//! birelcost serve [--jobs N]       newline-delimited JSON daemon on
//!                                  stdin/stdout: {"check": "<source>"} ->
//!                                  per-def verdicts, timings, cache stats
//! birelcost table1                 re-run the Table-1 benchmark suite
//! birelcost list                   list the bundled benchmarks
//! ```

use std::env;
use std::fs;
use std::io;
use std::process::ExitCode;

use birelcost::Engine;
use rel_service::{serve, BatchJob, BatchStats, Service, ServiceConfig};
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

const USAGE: &str = "usage: birelcost <check [--jobs N] FILE...|serve [--jobs N]|table1|list>";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => match parse_jobs(rest) {
            // Without --jobs, `check` stays sequential (the seed behaviour).
            Ok((jobs, files)) => check_files(&files, jobs.unwrap_or(1)),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "serve" => match parse_jobs(rest) {
            // The daemon defaults to the machine's parallelism: it exists to
            // serve traffic, and `{"batch": ...}` requests should use the
            // cores without an explicit flag.
            Ok((jobs, extra)) if extra.is_empty() => {
                serve_stdio(jobs.unwrap_or_else(rel_service::available_workers))
            }
            Ok(_) => usage_error("serve takes no positional arguments"),
            Err(e) => usage_error(&e),
        },
        Some((cmd, _)) if cmd == "table1" => table1(),
        Some((cmd, _)) if cmd == "list" => list(),
        _ => usage_error("unknown command"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("birelcost: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Extracts `--jobs N` from an argument list (`None` when absent — each
/// subcommand picks its own default).
fn parse_jobs(args: &[String]) -> Result<(Option<usize>, Vec<String>), String> {
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            let n = it
                .next()
                .ok_or_else(|| format!("{arg} requires a number"))?;
            jobs = Some(
                n.parse::<usize>()
                    .map_err(|_| format!("invalid worker count `{n}`"))?
                    .max(1),
            );
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            jobs = Some(
                n.parse::<usize>()
                    .map_err(|_| format!("invalid worker count `{n}`"))?
                    .max(1),
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((jobs, rest))
}

fn service_with(workers: usize) -> Service {
    Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
}

fn check_files(files: &[String], workers: usize) -> ExitCode {
    if files.is_empty() {
        eprintln!("birelcost check: no input files");
        return ExitCode::from(2);
    }

    // Read everything up front so I/O failures are reported per file and the
    // batch itself is pure checking work.
    let mut jobs = Vec::new();
    let mut ok = true;
    for file in files {
        match fs::read_to_string(file) {
            Ok(source) => jobs.push(BatchJob::new(file.clone(), source)),
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                ok = false;
            }
        }
    }

    let service = service_with(workers);
    let results = service.check_batch(&jobs);
    for result in &results {
        let file = &result.name;
        match &result.outcome {
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
            Ok(report) => {
                for def in &report.defs {
                    let status = if def.ok { "ok" } else { "FAIL" };
                    println!(
                        "{file}: {:<12} {:<4}  total {:?}  (tc {:?}, exelim {:?}, solve {:?})",
                        def.name,
                        status,
                        def.timings.total(),
                        def.timings.typecheck,
                        def.timings.existential_elim,
                        def.timings.solving
                    );
                    if let Some(err) = &def.error {
                        println!("{file}:   reason: {err}");
                    }
                }
                ok &= report.all_ok();
            }
        }
    }

    if workers > 1 {
        let stats = BatchStats::of(&results);
        let cache = service.cache_stats();
        println!(
            "checked {} file(s) on {workers} workers: {}/{} defs ok, cache {} hit(s) / {} miss(es), \
             {} numeric program(s) compiled ({} reused)",
            results.len(),
            stats.defs_ok,
            stats.defs,
            cache.hits,
            cache.misses,
            stats.programs_compiled,
            stats.program_cache_hits
        );
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn serve_stdio(workers: usize) -> ExitCode {
    let service = service_with(workers);
    let stdin = io::stdin();
    let stdout = io::stdout();
    match serve(&service, stdin.lock(), stdout.lock()) {
        Ok(summary) => {
            eprintln!(
                "birelcost serve: handled {} request(s), {} error(s)",
                summary.requests, summary.errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("birelcost serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn table1() -> ExitCode {
    let engine = Engine::new();
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12} {:>9} {:>9}  result",
        "Benchmark", "total(s)", "typecheck(s)", "exist.elim(s)", "solving(s)", "points", "programs"
    );
    for b in all_benchmarks() {
        let program = match parse_program(b.source) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<10} parse error: {e}", b.name);
                continue;
            }
        };
        let report = engine.check_program(&program);
        let timings = report
            .def(b.main_def)
            .map(|d| d.timings)
            .unwrap_or_default();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>14.3} {:>12.3} {:>9} {:>9}  {}",
            b.name,
            report.total_time().as_secs_f64(),
            timings.typecheck.as_secs_f64(),
            timings.existential_elim.as_secs_f64(),
            timings.solving.as_secs_f64(),
            report.points_evaluated(),
            report.programs_compiled(),
            if report.all_ok() { "checked" } else { "not verified" }
        );
    }
    ExitCode::SUCCESS
}

fn list() -> ExitCode {
    for b in all_benchmarks() {
        let status = match b.status {
            VerificationStatus::Verified => "verified",
            VerificationStatus::Unverified => "unverified",
        };
        println!("{:<10} [{status:>10}]  {}", b.name, b.description);
    }
    ExitCode::SUCCESS
}
