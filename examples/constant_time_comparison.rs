//! Constant-time comparison (the `comp` benchmark): relate a program to
//! itself through exact unary cost bounds and validate empirically that two
//! runs on different secrets have *identical* evaluation cost.
//!
//! Run with `cargo run --example constant_time_comparison`.

use rel_eval::{eval, Env};
use rel_suite::benchmark;
use rel_suite::generators::{apply_spine, list_literal, Workload};
use rel_syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark("comp").expect("comp is part of the Table-1 suite");
    let program = parse_program(bench.source)?;
    let comp = program.def("comp").expect("comp definition");

    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>8}",
        "n", "alpha", "cost(left)", "cost(right)", "diff"
    );
    for (n, alpha) in [(4usize, 1usize), (8, 3), (16, 8), (32, 32)] {
        let w = Workload::generate(n, alpha, 0xC0);
        let secret = list_literal(&w.left);
        let run = |guess: &[i64]| {
            let call = apply_spine(comp.left.clone(), 1, secret.clone()).app(list_literal(guess));
            eval(&call, &Env::new()).unwrap().cost as i64
        };
        let left = run(&w.left);
        let right = run(&w.right);
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>8}",
            n,
            w.differing,
            left,
            right,
            left - right
        );
        assert_eq!(left, right, "comp must be constant time");
    }
    println!("comparison cost is independent of the compared values (relative cost 0)");
    Ok(())
}
