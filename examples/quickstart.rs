//! Quickstart: parse a small relational program and type check it.
//!
//! Run with `cargo run --example quickstart`.

use birelcost::Engine;
use rel_syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two definitions: boolean negation (related to itself at the diagonal
    // type) and the §3 `map` function with its relative-cost bound t·α.
    let source = r#"
        def negate : boolr -> boolr
        = lam b. if b then false else true;

        def map : forall t :: real. box(tv a ->[t] tv b) ->
                  forall n :: nat. forall al :: nat.
                  list[n; al] tv a ->[t * al] list[n; al] tv b
        = Lam. fix map(f). Lam. Lam. lam l.
            case l of
              nil -> nil
            | h :: tl -> cons(f h, map f [] [] tl);
    "#;
    let program = parse_program(source)?;
    let report = Engine::new().check_program(&program);
    for def in &report.defs {
        println!(
            "{:<8} {}  ({} annotations, {:?})",
            def.name,
            if def.ok { "checked" } else { "REJECTED" },
            def.annotations,
            def.timings.total()
        );
    }
    assert!(report.all_ok());
    println!("all definitions check");
    Ok(())
}
