//! Merge sort and its divide-and-conquer relative-cost recurrence (the
//! paper's worked example of §6): evaluate two runs of `msort` on inputs that
//! differ in α positions and compare the measured cost difference with the
//! recurrence Q(n, α) used in the type annotation.
//!
//! Run with `cargo run --example relational_cost_msort`.

use rel_constraint::lemmas::big_q;
use rel_eval::{eval, Env};
use rel_index::{Extended, Idx, IdxEnv};
use rel_suite::benchmark;
use rel_suite::generators::{apply_spine, list_literal, Workload};
use rel_syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark("msort").expect("msort is part of the Table-1 suite");
    let program = parse_program(bench.source)?;
    let bsplit = program.def("bsplit").unwrap();
    let merge = program.def("merge").unwrap();
    let msort = program.def("msort").unwrap();

    println!(
        "{:<6} {:>6} {:>14} {:>16}",
        "n", "alpha", "measured Δcost", "Q-shape (scaled)"
    );
    for (n, alpha) in [(4usize, 1usize), (8, 2), (16, 4), (32, 4)] {
        let w = Workload::generate(n, alpha, 0x5027);
        // Inline the helper definitions by let-binding them around the call.
        let run = |items: &[i64]| {
            let call = apply_spine(msort.left.clone(), 2, list_literal(items));
            let with_merge = rel_syntax::Expr::let_in("merge", merge.left.clone(), call);
            let with_bsplit = rel_syntax::Expr::let_in("bsplit", bsplit.left.clone(), with_merge);
            eval(&with_bsplit, &Env::new()).unwrap().cost as i64
        };
        let diff = (run(&w.left) - run(&w.right)).abs();
        // The paper's Q(n, α) (with unit-cost h); our cost model scales it by
        // a constant factor — compare shapes, not absolute values.
        let q = big_q(Idx::nat(n as u64), Idx::nat(w.differing as u64))
            .eval(&IdxEnv::new())
            .unwrap();
        let q = match q {
            Extended::Finite(r) => r.to_f64() * 16.0,
            Extended::Infinity => f64::INFINITY,
        };
        println!("{:<6} {:>6} {:>14} {:>16.0}", n, w.differing, diff, q);
        assert!(
            (diff as f64) <= q,
            "measured relative cost exceeds the Q-shaped bound"
        );
    }
    println!("measured relative costs stay below the divide-and-conquer recurrence");
    Ok(())
}
