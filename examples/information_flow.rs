//! Relational typing as information-flow reasoning: `boolr` plays the role of
//! "low" (public, equal in both runs) data and `U(bool, bool)` the role of
//! "high" (secret, possibly different) data.  A program whose result is
//! `boolr` cannot leak its `U` inputs — exactly the non-interference reading
//! of relational refinement types sketched in the paper's introduction.
//!
//! Run with `cargo run --example information_flow`.

use birelcost::Engine;
use rel_syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();

    // A public computation over public data: accepted at boolr → boolr.
    let ok = parse_program("def public : boolr -> boolr = lam lo. if lo then false else true;")?;
    assert!(engine.check_program(&ok).all_ok());
    println!("public  : boolr -> boolr                      checked (no leak possible)");

    // Branching on a secret and returning the branch result as public data
    // must be rejected: the two runs may disagree on the secret.
    let leak = parse_program("def leak : UU bool -> boolr = lam hi. if hi then true else false;")?;
    assert!(!engine.check_program(&leak).all_ok());
    println!("leak    : UU bool -> boolr                    rejected (explicit flow)");

    // Branching on a secret is fine as long as the result is also secret.
    let ok_high = parse_program(
        "def launder : UU bool -> UU bool @ 1 = lam hi. if hi then false else true;",
    )?;
    assert!(engine.check_program(&ok_high).all_ok());
    println!("launder : UU bool -> UU bool                  checked (secret stays secret)");

    // Constant functions of a secret are public again: the two runs agree.
    let constant =
        parse_program("def constant : UU bool -> boolr @ 1 = lam hi. if hi then true else true;")?;
    let accepted = engine.check_program(&constant).all_ok();
    println!(
        "constant: UU bool -> boolr (constant result)  {}",
        if accepted {
            "checked"
        } else {
            "rejected (conservative)"
        }
    );
    Ok(())
}
