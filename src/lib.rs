//! Umbrella package for the BiRelCost reproduction: re-exports the workspace
//! crates so examples and integration tests have a single entry point.
//!
//! See the individual crates for the substance:
//! [`birelcost`] (the checker), [`rel_syntax`], [`rel_constraint`],
//! [`rel_unary`], [`rel_index`], [`rel_eval`] and [`rel_suite`].
pub use birelcost;
pub use rel_constraint;
pub use rel_eval;
pub use rel_index;
pub use rel_obs;
pub use rel_persist;
pub use rel_service;
pub use rel_suite;
pub use rel_syntax;
pub use rel_unary;
