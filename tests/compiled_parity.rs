//! Whole-suite parity of the compiled numeric layer.
//!
//! Runs every *verified* Table-1 benchmark through two engines that differ
//! only in `SolveConfig::use_compiled_eval` and asserts that the compiled
//! bytecode path is observationally identical to the tree-walking reference
//! path: same per-definition verdicts, same validity-cache hit/miss
//! counters, same numeric point counts, and identical warm-cache behaviour
//! (the two configurations share a fingerprint, so verdicts are
//! exchangeable between them by design).

use std::sync::Arc;

use birelcost::Engine;
use rel_constraint::{ShardedValidityCache, SolveConfig, ValidityCache};
use rel_suite::{all_benchmarks, VerificationStatus};

#[test]
fn compiled_and_tree_solvers_agree_across_the_verified_suite() {
    // Both engines run with the Fourier–Motzkin layer *off*: with it on,
    // the verified suite is decided entirely symbolically (zero numeric
    // points — asserted by tests/fm_decides_suite.rs) and this comparison
    // of the two numeric evaluators would be vacuous.
    let compiled_cache = Arc::new(ShardedValidityCache::new());
    let tree_cache = Arc::new(ShardedValidityCache::new());
    let compiled = Engine::new()
        .with_solve_config(SolveConfig {
            use_fm: false,
            ..SolveConfig::default()
        })
        .with_cache(compiled_cache.clone());
    let tree = Engine::new()
        .with_solve_config(SolveConfig {
            use_fm: false,
            use_compiled_eval: false,
            ..SolveConfig::default()
        })
        .with_cache(tree_cache.clone());

    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            // Same exclusion as the seed's suite test: the unverified
            // benchmarks take the numeric solver minutes.
            continue;
        }
        let program = rel_syntax::parse_program(b.source).unwrap();
        let rc = compiled.check_program(&program);
        let rt = tree.check_program(&program);
        assert_eq!(
            rc.defs.len(),
            rt.defs.len(),
            "{}: def counts differ",
            b.name
        );
        for (dc, dt) in rc.defs.iter().zip(&rt.defs) {
            assert_eq!(
                dc.ok, dt.ok,
                "{}::{}: compiled and tree verdicts diverge",
                b.name, dc.name
            );
            assert_eq!(
                (dc.stats.cache_hits, dc.stats.cache_misses),
                (dt.stats.cache_hits, dt.stats.cache_misses),
                "{}::{}: validity-cache counters diverge",
                b.name,
                dc.name
            );
            assert_eq!(
                dc.stats.points_evaluated, dt.stats.points_evaluated,
                "{}::{}: numeric point counts diverge",
                b.name, dc.name
            );
        }
    }

    // The caches must have warmed identically: every query sequence, hit and
    // stored verdict matched between the two solver paths.
    let (sc, st) = (compiled_cache.stats(), tree_cache.stats());
    assert_eq!(sc.hits, st.hits, "cache hit totals diverge");
    assert_eq!(sc.misses, st.misses, "cache miss totals diverge");
    assert_eq!(sc.entries, st.entries, "cache entry totals diverge");
    assert!(sc.entries > 0, "the suite should populate the cache");
}

#[test]
fn compiled_layer_actually_compiles_on_the_suite() {
    // Sanity check that the suite exercises the bytecode path at all: at
    // least one verified benchmark must reach the numeric layer *when the
    // FM layer is off* (with it on, none does — that is the FM layer's
    // acceptance gate, not this test's).
    let engine = Engine::new().with_solve_config(SolveConfig {
        use_fm: false,
        ..SolveConfig::default()
    });
    let mut programs = 0;
    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            continue;
        }
        let program = rel_syntax::parse_program(b.source).unwrap();
        programs += engine.check_program(&program).programs_compiled();
    }
    assert!(
        programs > 0,
        "no verified benchmark reached the compiled numeric layer"
    );
}
