//! The Fourier–Motzkin layer's acceptance gates.
//!
//! 1. Every *verified* Table-1 benchmark is decided entirely symbolically:
//!    `points_evaluated == 0` — no grid sweep, no random sampling — and
//!    every definition's verdict carries `proved` provenance.  This is the
//!    headline property of the linear decision layer: what used to be
//!    grid-checked is now proved.
//! 2. The *unverified* benchmarks — including `merge` and `msort`, whose
//!    residual existential searches were minutes-long until the indexed
//!    component search of this PR — complete in test-suite time with the
//!    documented verdicts and provenance-aware failure diagnostics.

use birelcost::Engine;
use rel_suite::{all_benchmarks, benchmark, VerificationStatus};
use rel_syntax::parse_program;

#[test]
fn verified_suite_is_decided_with_zero_grid_points() {
    let engine = Engine::new();
    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            continue;
        }
        let program = parse_program(b.source).unwrap();
        let report = engine.check_program(&program);
        assert!(report.all_ok(), "{} failed: {report:?}", b.name);
        assert_eq!(
            report.points_evaluated(),
            0,
            "{}: {} grid/random points evaluated — an obligation fell \
             through the symbolic/FM layers",
            b.name,
            report.points_evaluated()
        );
        assert_eq!(
            report.grid_accepted(),
            0,
            "{}: an obligation was accepted by grid sweep instead of proof",
            b.name
        );
        for d in &report.defs {
            assert!(
                d.proved,
                "{}::{}: verdict is grid-checked, expected proved",
                b.name, d.name
            );
        }
    }
}

#[test]
fn flatten_is_promoted_and_proved() {
    // The promotion itself: flatten's obligations (row/width products
    // against flattened totals) needed a 169 185-point grid sweep before
    // the FM layer and product distribution; now they are proved outright.
    let b = benchmark("flatten").unwrap();
    assert_eq!(b.status, VerificationStatus::Verified);
    let report = Engine::new().check_program(&parse_program(b.source).unwrap());
    assert!(report.all_ok());
    assert_eq!(report.points_evaluated(), 0);
    assert!(report.fm_proved() > 0, "FM must carry some of the proof");
}

/// The unverified benchmarks promoted into the test suite: each previously
/// ground through enormous numeric sweeps or minutes-long existential
/// searches; with the FM layer and the indexed component search they
/// complete in milliseconds-to-seconds.  Their stated bounds are still not
/// discharged by the native solver (that is what `Unverified` means), so
/// the gate here is *termination within test time* plus the documented
/// verdict — a regression in either direction (a silent flip to passing,
/// or a return of the minutes-long searches via test timeout) fails.
///
/// `merge` and `msort` joined the batch with this PR: their residual
/// existential searches (the quadratic candidate scan over the
/// divide-and-conquer cost variables) used to run 20+ minutes; the
/// per-component indexed search with memoized rejection holds merge to
/// ~0.6 s and msort to ~7 s end-to-end, with the documented
/// `search-exhausted` refutations.
#[test]
fn unverified_batch_completes_quickly_with_documented_verdicts() {
    // (name, expected all_ok)
    let batch = [
        ("comp", false),
        ("sam", false),
        ("find", false),
        ("2Dcount", false),
        ("ssort", false),
        ("bsplit", false),
        ("bfold", false),
        ("merge", false),
        ("msort", false),
    ];
    let engine = Engine::new();
    for (name, expect_ok) in batch {
        let b = benchmark(name).unwrap();
        assert_eq!(b.status, VerificationStatus::Unverified, "{name}");
        let program = parse_program(b.source).unwrap();
        let start = std::time::Instant::now();
        let report = engine.check_program(&program);
        let elapsed = start.elapsed();
        assert_eq!(
            report.all_ok(),
            expect_ok,
            "{name}: verdict changed — update the batch table (and the \
             benchmark's status) if the solver genuinely improved: {report:?}"
        );
        // Pre-FM these took minutes; anything near the old regime means the
        // symbolic layers stopped carrying the probe obligations.
        assert!(
            elapsed < std::time::Duration::from_secs(30),
            "{name}: took {elapsed:?} — the FM layer stopped short-circuiting \
             its numeric work"
        );
        // Failure diagnostics must say *why*: a counterexample source or an
        // exhausted search, not just "not valid".
        for d in report.defs.iter().filter(|d| !d.ok) {
            let err = d.error.as_deref().unwrap_or("");
            assert!(
                err.contains("counterexample") || err.contains("undecided"),
                "{name}::{}: diagnostic lacks a refutation source: {err}",
                d.name
            );
        }
    }
}
