//! Experiment E4: the measured relative cost of two runs never exceeds the
//! typed bound, on randomized workloads (lists of length ≤ 64 differing in at
//! most α positions).

use rel_eval::{eval, Env};
use rel_suite::benchmark;
use rel_suite::generators::{apply_spine, list_literal, Workload};
use rel_syntax::parse_program;

fn run_unary(def: &rel_syntax::Def, iapps: usize, items: &[i64]) -> i64 {
    let call = apply_spine(def.left.clone(), iapps, list_literal(items));
    eval(&call, &Env::new()).unwrap().cost as i64
}

#[test]
fn structure_synchronous_functions_have_zero_relative_cost() {
    // suml and rev traverse the spine only: two runs on lists differing in
    // value (not length) cost exactly the same — the typed bound 0.
    for (bench_name, def_name, iapps) in [("appSum", "suml", 2usize), ("rev", "append", 2)] {
        let program = parse_program(benchmark(bench_name).unwrap().source).unwrap();
        let def = program.def(def_name).unwrap();
        for seed in 0..5u64 {
            let w = Workload::generate(24, 6, seed);
            if def_name == "append" {
                // append takes two lists; apply to the pair (left, right-half).
                continue;
            }
            let d = (run_unary(def, iapps, &w.left) - run_unary(def, iapps, &w.right)).abs();
            assert_eq!(d, 0, "{bench_name}/{def_name} seed {seed}");
        }
    }
}

#[test]
fn constant_time_comparison_is_constant_time() {
    let program = parse_program(benchmark("comp").unwrap().source).unwrap();
    let comp = program.def("comp").unwrap();
    for seed in 0..8u64 {
        let w = Workload::generate(16, 16, seed);
        let secret = list_literal(&w.left);
        let cost = |guess: &[i64]| {
            let call = apply_spine(comp.left.clone(), 1, secret.clone()).app(list_literal(guess));
            eval(&call, &Env::new()).unwrap().cost
        };
        assert_eq!(cost(&w.left), cost(&w.right), "seed {seed}");
    }
}

#[test]
fn map_relative_cost_is_bounded_by_alpha_times_per_element_cost() {
    // Apply map with an (equal) mapping function λx. x + 1 to lists differing
    // in α positions: the two runs cost exactly the same (the relative cost
    // bound t·α is an upper bound; equal functions make the actual difference
    // zero in this cost model).
    let program = parse_program(benchmark("map").unwrap().source).unwrap();
    let map = program.def("map").unwrap();
    let f = rel_syntax::parse_expr("lam x. x + 1").unwrap();
    for seed in 0..5u64 {
        let w = Workload::generate(20, 7, seed);
        let run = |items: &[i64]| {
            let call = map
                .left
                .clone()
                .iapp()
                .app(f.clone())
                .iapp()
                .iapp()
                .app(list_literal(items));
            eval(&call, &Env::new()).unwrap().cost as i64
        };
        let diff = (run(&w.left) - run(&w.right)).abs();
        let bound = 3 * (w.differing as i64); // per-element cost of f is ≤ 3
        assert!(diff <= bound, "seed {seed}: {diff} > {bound}");
    }
}

#[test]
fn find_variants_differ_by_at_most_their_exec_interval_gap() {
    let program = parse_program(benchmark("find").unwrap().source).unwrap();
    let def = program.def("find").unwrap();
    let left = def.left.clone();
    let right = def.right.clone().unwrap();
    for seed in 0..5u64 {
        let w = Workload::generate(16, 4, seed);
        let run = |body: &rel_syntax::Expr, items: &[i64]| {
            let call =
                apply_spine(body.clone(), 1, list_literal(items)).app(rel_syntax::Expr::Int(3));
            eval(&call, &Env::new()).unwrap().cost as i64
        };
        let n = 16i64;
        // Typed intervals: left [7n+1, 7n+1], right [6n+1, 7n+1]; the relative
        // cost in either direction is bounded by the interval gap n.
        let diff = (run(&left, &w.left) - run(&right, &w.right)).abs();
        assert!(diff <= n + 1, "seed {seed}: {diff}");
    }
}
