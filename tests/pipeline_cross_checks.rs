//! Cross-crate integration tests: parser ↔ checker ↔ solver ↔ evaluator.

use birelcost::corelang::embed_naive;
use birelcost::{Engine, Heuristics};
use rel_eval::{eval, Env};
use rel_syntax::{parse_expr, parse_program, SystemLevel};

#[test]
fn pretty_printed_programs_reparse_and_recheck() {
    let src = "def double : intr -> intr = lam x. x + x;";
    let program = parse_program(src).unwrap();
    let printed = format!(
        "def double : {} = {};",
        rel_syntax::pretty::rel_type(&program.defs[0].ty),
        rel_syntax::pretty::expr(&program.defs[0].left)
    );
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(reparsed.defs[0].left, program.defs[0].left);
    assert!(Engine::new().check_program(&reparsed).all_ok());
}

#[test]
fn erasure_of_core_embedding_is_the_identity_on_checked_programs() {
    let program =
        parse_program("def rotate : boolr -> boolr = lam b. if b then false else true;").unwrap();
    let core = embed_naive(&program.defs[0].left);
    assert_eq!(core.erase(), program.defs[0].left);
}

#[test]
fn checked_programs_evaluate_without_runtime_errors() {
    // Type checking should rule out runtime shape errors.
    let program = parse_program(
        "def third : unitr -> forall n :: nat. forall a :: nat. list[n; a] (UU int) ->[0] UU int
         = fix third(u). Lam. Lam. lam l.
             case l of nil -> 0 | h :: t -> h + third () [] [] t;",
    )
    .unwrap();
    assert!(Engine::new().check_program(&program).all_ok());
    let call = rel_suite::generators::apply_spine(
        program.defs[0].left.clone(),
        2,
        rel_suite::generators::list_literal(&[5, 6, 7]),
    );
    let out = eval(&call, &Env::new()).unwrap();
    assert_eq!(out.value.as_int(), Some(18));
}

#[test]
fn heuristics_ablation_changes_outcomes() {
    // The map example needs heuristic 1 (both cons rules joined with ∨) —
    // with all heuristics off, its consNC-requiring branch fails.
    let src = "def map : forall t :: real. box(tv a ->[t] tv b) ->
                  forall n :: nat. forall al :: nat.
                  list[n; al] tv a ->[t * al] list[n; al] tv b
               = Lam. fix map(f). Lam. Lam. lam l.
                   case l of nil -> nil | h :: tl -> cons(f h, map f [] [] tl);";
    let program = parse_program(src).unwrap();
    assert!(Engine::new().check_program(&program).all_ok());
    let stripped = Engine::new().with_heuristics(Heuristics::none());
    // Without the heuristics the derivation may or may not go through — the
    // point of the ablation is that the configuration is observable; at the
    // very least the engine must still terminate and produce a report.
    let report = stripped.check_program(&program);
    assert_eq!(report.defs.len(), 1);
}

#[test]
fn lower_system_levels_accept_cost_free_programs() {
    let src = "def id : list[3; 1] intr -> list[3; 1] intr = lam l. l;";
    for level in [
        SystemLevel::RelRef,
        SystemLevel::RelRefU,
        SystemLevel::RelCost,
    ] {
        let report = Engine::new()
            .at_level(level)
            .check_program(&parse_program(src).unwrap());
        assert!(report.all_ok(), "level {level}");
    }
}

#[test]
fn relstlc_module_agrees_with_the_full_checker_on_its_fragment() {
    use birelcost::relstlc::{self, StlcType};
    let e = parse_expr("lam b. if b then true else false").unwrap();
    // relSTLC accepts boolr → boolr.
    assert!(relstlc::declarative(
        &vec![],
        &e,
        &e,
        &StlcType::arrow(StlcType::BoolR, StlcType::BoolR)
    ));
    // And so does the full engine.
    let report = Engine::new().check_program(
        &parse_program("def f : boolr -> boolr = lam b. if b then true else false;").unwrap(),
    );
    assert!(report.all_ok());
}
