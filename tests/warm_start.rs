//! Warm-start acceptance test over the tier-1-covered sources: a second
//! cache-file-backed run over the verified benchmark suite must perform
//! *zero* numeric-layer solver work for unchanged definitions, verified by
//! the cache/skip counters in the reports.

use rel_service::{BatchJob, Service, ServiceConfig};
use rel_suite::{all_benchmarks, VerificationStatus};

fn suite_jobs() -> Vec<BatchJob> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.status == VerificationStatus::Verified)
        .map(|b| BatchJob::new(b.name, b.source))
        .collect()
}

fn service() -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        cache_shards: 8,
    })
}

#[test]
fn second_cache_file_run_does_zero_solver_work_for_unchanged_defs() {
    let dir = std::env::temp_dir().join(format!("birelcost-warmstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("suite.birelcost");
    let _ = std::fs::remove_file(&path);

    // First run (a fresh process in real life): cold, then snapshot.
    let first = service();
    assert_eq!(first.attach_cache_file(&path).warning, None);
    let cold = first.check_batch(&suite_jobs());
    first.save_cache().unwrap();

    // Second run: a brand-new service restores the snapshot.
    let second = service();
    let outcome = second.attach_cache_file(&path);
    assert_eq!(outcome.warning, None);
    assert!(outcome.verdicts > 0);
    assert!(outcome.defs > 0);
    let warm = second.check_batch(&suite_jobs());

    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        let cold_report = c.outcome.as_ref().expect("suite sources parse");
        let warm_report = w.outcome.as_ref().expect("suite sources parse");
        for (cd, wd) in cold_report.defs.iter().zip(&warm_report.defs) {
            assert_eq!(
                cd.ok, wd.ok,
                "warm verdict diverged on {}/{}",
                c.name, cd.name
            );
            assert!(
                wd.skipped_unchanged,
                "{}/{} was re-checked despite an unchanged input hash",
                c.name, wd.name
            );
            // Zero numeric-layer solver work — the acceptance bar.
            assert_eq!(
                wd.stats.points_evaluated, 0,
                "{}/{} evaluated points",
                c.name, wd.name
            );
            assert_eq!(
                wd.stats.programs_compiled, 0,
                "{}/{} compiled programs",
                c.name, wd.name
            );
            assert_eq!(
                wd.stats.cache_misses, 0,
                "{}/{} missed the cache",
                c.name, wd.name
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
