//! Experiment E3: the benchmark suite type checks (for the subset whose
//! bounds the native solver discharges; see EXPERIMENTS.md for the others),
//! and deliberately wrong bounds are rejected.

use birelcost::Engine;
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

#[test]
fn verified_benchmarks_check_end_to_end() {
    let engine = Engine::new();
    for b in all_benchmarks() {
        if b.status != VerificationStatus::Verified {
            continue;
        }
        let program = parse_program(b.source).unwrap();
        let report = engine.check_program(&program);
        assert!(report.all_ok(), "{} failed: {:?}", b.name, report);
    }
}

#[test]
fn every_benchmark_parses() {
    // Running the engine on the not-yet-verified divide-and-conquer
    // benchmarks is exercised by the (opt-in) Table-1 bench rather than the
    // test suite: their constraint problems take the numeric solver layer
    // minutes, not milliseconds.  Here we assert the whole suite parses.
    for b in all_benchmarks() {
        let program = parse_program(b.source).unwrap();
        assert!(!program.is_empty(), "{}", b.name);
    }
}

#[test]
fn unsound_variants_are_rejected() {
    let engine = Engine::new();
    // map with a zero relative-cost bound (the paper's bound is t·α).
    let unsound = r#"
        def map : forall t :: real. box(tv a ->[t] tv b) ->
                  forall n :: nat. forall al :: nat.
                  list[n; al] tv a ->[0] list[n; al] tv b
        = Lam. fix map(f). Lam. Lam. lam l.
            case l of nil -> nil | h :: tl -> cons(f h, map f [] [] tl);
    "#;
    let report = engine.check_program(&parse_program(unsound).unwrap());
    assert!(!report.all_ok());

    // append with a wrong output length.
    let unsound = r#"
        def append : unitr -> forall n :: nat. forall a :: nat.
                     list[n; a] (UU int) ->
                     forall m :: nat. forall b :: nat.
                     list[m; b] (UU int) ->[0] list[n + m + 1; a + b] (UU int)
        = fix append(u). Lam. Lam. lam l1. Lam. Lam. lam l2.
            case l1 of nil -> l2 | h :: t -> cons(h, append () [] [] t [] [] l2);
    "#;
    let report = engine.check_program(&parse_program(unsound).unwrap());
    assert!(!report.all_ok());
}

#[test]
fn annotation_effort_is_one_per_definition() {
    // §6: annotations are only needed at top-level definitions.
    for b in all_benchmarks() {
        let program = parse_program(b.source).unwrap();
        assert_eq!(
            program.annotation_count(),
            program.len(),
            "{} should need exactly one annotation per definition",
            b.name
        );
    }
}
